// Ephemeral port allocation with a reallocation cooldown.
//
// Section 7.1's port-reuse attack: an attacker that grabs a just-freed port
// within THRESHOLD inherits the old conversation's flow (same five-tuple,
// same sfl, same key) and can have recorded traffic decrypted to itself.
// The paper's countermeasure -- "impose a wait of THRESHOLD on port
// reallocation", a change to in_pcballoc() in 4.4BSD -- is this allocator:
// released ports become allocatable again only after the cooldown, so a new
// owner can never land inside a live flow.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "util/clock.hpp"

namespace fbs::net {

class PortAllocator {
 public:
  /// `cooldown` should equal (or exceed) the FBS flow THRESHOLD.
  PortAllocator(const util::Clock& clock, util::TimeUs cooldown,
                std::uint16_t first = 1024, std::uint16_t last = 65535)
      : clock_(clock), cooldown_(cooldown), first_(first), last_(last),
        next_(first) {}

  /// Allocate a specific port; fails if in use or cooling down.
  bool acquire(std::uint16_t port);

  /// Allocate any free port (round-robin scan); nullopt if exhausted.
  std::optional<std::uint16_t> acquire_any();

  /// Release a port; it re-enters the pool after the cooldown.
  void release(std::uint16_t port);

  bool in_use(std::uint16_t port) const { return used_.contains(port); }
  bool cooling_down(std::uint16_t port) const;
  std::size_t cooling_count() const;

 private:
  const util::Clock& clock_;
  util::TimeUs cooldown_;
  std::uint16_t first_;
  std::uint16_t last_;
  std::uint16_t next_;
  std::set<std::uint16_t> used_;
  std::map<std::uint16_t, util::TimeUs> released_;  // port -> release time
};

}  // namespace fbs::net
