#include "net/stack.hpp"

namespace fbs::net {

IpStack::IpStack(Transport& network, const util::Clock& clock,
                 Ipv4Address address, std::size_t mtu)
    : network_(network),
      address_(address),
      mtu_(mtu),
      reassembler_(clock) {
  network_.attach(address_, [this](util::Bytes frame) {
    on_frame(std::move(frame));
  });
}

IpStack::~IpStack() { network_.detach(address_); }

std::size_t IpStack::effective_payload_size() const {
  return mtu_ - Ipv4Header::kSize - hooks_.header_overhead;
}

void IpStack::register_protocol(IpProto proto, ProtocolHandler handler) {
  handlers_[static_cast<std::uint8_t>(proto)] = std::move(handler);
}

bool IpStack::output(Ipv4Address destination, IpProto proto,
                     util::BytesView payload, bool dont_fragment) {
  // Part [1]: header construction and (trivial, fully-connected) routing.
  Ipv4Header header;
  header.id = next_id_++;
  header.protocol = static_cast<std::uint8_t>(proto);
  header.source = address_;
  header.destination = destination;
  header.dont_fragment = dont_fragment;

  util::Bytes body(payload.begin(), payload.end());

  // FBS output hook sits between route selection and fragmentation.
  if (hooks_.output && !hooks_.output(header, body)) {
    ++counters_.hook_drops_out;
    return false;
  }

  // Part [2]: fragmentation.
  auto packets = fragment(header, body, mtu_);
  if (packets.empty()) {
    ++counters_.df_drops;
    return false;
  }

  // Part [3]: transmit on the chosen interface (toward the next hop).
  ++counters_.packets_out;
  counters_.fragments_out += packets.size();
  const Ipv4Address hop = next_hop_for(destination);
  for (auto& p : packets) transmit(hop, std::move(p));
  return true;
}

void IpStack::transmit(Ipv4Address next_hop, util::Bytes frame) {
  if (transmit_hook_) {
    transmit_hook_(next_hop, std::move(frame));
    return;
  }
  network_.send(address_, next_hop, std::move(frame));
}

void IpStack::add_route(Ipv4Address network, int prefix_len,
                        Ipv4Address next_hop) {
  routes_.push_back(Route{network.value, prefix_len, next_hop});
}

Ipv4Address IpStack::next_hop_for(Ipv4Address destination) const {
  const Route* best = nullptr;
  for (const Route& r : routes_) {
    const std::uint32_t mask =
        r.prefix_len == 0 ? 0 : ~0u << (32 - r.prefix_len);
    if ((destination.value & mask) == (r.network & mask)) {
      if (!best || r.prefix_len > best->prefix_len) best = &r;
    }
  }
  return best ? best->next_hop : destination;
}

bool IpStack::forward_packet(Ipv4Header header, util::BytesView payload) {
  if (header.ttl <= 1) {
    ++counters_.ttl_expired;
    return false;
  }
  header.ttl -= 1;
  auto packets = fragment(header, payload, mtu_);
  if (packets.empty()) {
    ++counters_.df_drops;
    return false;
  }
  ++counters_.forwarded;
  const Ipv4Address hop = next_hop_for(header.destination);
  for (auto& p : packets) transmit(hop, std::move(p));
  return true;
}

void IpStack::on_frame(util::Bytes frame) {
  ++counters_.packets_in;

  // Part [1]: validation.
  auto parsed = Ipv4Header::parse(frame);
  if (!parsed) {
    ++counters_.parse_errors;
    return;
  }
  if (parsed->header.destination != address_) {
    if (!forwarding_) {
      ++counters_.not_for_us;
      return;
    }
    // Router path: optionally intercepted (tunnel ingress), else forwarded
    // as-is. Fragments are forwarded fragment-by-fragment unless a filter
    // needs the whole datagram -- our tunnel reassembles first for
    // simplicity, matching local-delivery semantics.
    if (forward_filter_) {
      counters_.reassembly_expired += reassembler_.expire();
      auto whole = reassembler_.push(parsed->header, std::move(parsed->payload));
      if (!whole) return;
      if (forward_filter_(whole->header, whole->payload)) return;  // consumed
      (void)forward_packet(whole->header, whole->payload);
      return;
    }
    (void)forward_packet(parsed->header, parsed->payload);
    return;
  }

  // Part [2]: reassembly (local delivery only, as in 4.4BSD).
  counters_.reassembly_expired += reassembler_.expire();
  auto complete = reassembler_.push(parsed->header, std::move(parsed->payload));
  if (!complete) return;

  // FBS input hooks sit between reassembly and dispatch. The deferred hook
  // (parallel pipeline) gets first refusal; datagrams it consumes complete
  // via deliver() from the pipeline's drain.
  if (hooks_.deferred_input) {
    switch (hooks_.deferred_input(complete->header, complete->payload)) {
      case DeferredVerdict::kConsumed:
        ++counters_.deferred_in;
        return;
      case DeferredVerdict::kDrop:
        ++counters_.hook_drops_in;
        return;
      case DeferredVerdict::kProcessSync:
        break;
    }
  }
  if (hooks_.input && !hooks_.input(complete->header, complete->payload)) {
    ++counters_.hook_drops_in;
    return;
  }

  deliver(complete->header, std::move(complete->payload));
}

void IpStack::deliver(const Ipv4Header& header, util::Bytes payload) {
  // Part [3]: dispatch to the higher-layer protocol.
  const auto it = handlers_.find(header.protocol);
  if (it == handlers_.end()) {
    ++counters_.no_protocol;
    return;
  }
  ++counters_.delivered;
  it->second(header, std::move(payload));
}

}  // namespace fbs::net
