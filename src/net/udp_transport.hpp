// Real-socket Transport backend: FBS wire frames (full IPv4 packets, the
// same bytes SimNetwork carries) ride as UDP datagram payloads between OS
// processes. The paper's engine only ever asked for a Send()/Receive()
// datagram seam, so this is all it takes to move real packets: bind one
// AF_INET socket, map the FBS-layer addresses to socket endpoints, and pump.
//
// Determinism story: the backend is single-threaded and poll-driven -- no
// receive thread, no locks. Frames and timers are dispatched only from
// inside poll(), on the caller's thread, in arrival/deadline order. The
// conservation equation SimNetwork closes holds here too (Transport::Totals):
// every frame entering send() or read off the socket ends up delivered, on
// the wire, or in exactly one counted drop bucket.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "util/clock.hpp"

namespace fbs::net {

struct UdpTransportConfig {
  std::string bind_host = "127.0.0.1";
  std::uint16_t bind_port = 0;  // 0 = kernel-assigned ephemeral port
  /// Frames longer than this are dropped before sendto (counted in
  /// `oversized`), the same clamp EMSGSIZE would impose further down --
  /// surfacing the MTU as an explicit counted drop instead of an errno.
  std::size_t mtu = 1500;
  /// Bounded receive queue between the socket and the sinks; overflow is a
  /// counted drop (`rx_queue_full`), mirroring a NIC ring overrun.
  std::size_t recv_queue_frames = 1024;
  /// Learn peer socket endpoints from the IPv4 source address of received
  /// frames, so a responder needs no out-of-band peer table to answer.
  bool learn_peers = true;
};

class UdpTransport final : public Transport {
 public:
  UdpTransport(const util::Clock& clock, UdpTransportConfig config = {});
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// False when socket/bind failed; errno text in error().
  bool ok() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }
  /// The port actually bound (resolves an ephemeral request).
  std::uint16_t local_port() const { return local_port_; }

  /// Map an FBS-layer address to a real socket endpoint. `host` is a
  /// dotted-quad (no resolver -- loopback and lab addresses).
  bool add_peer(Ipv4Address addr, const std::string& host,
                std::uint16_t port);

  void attach(Ipv4Address addr, ReceiveFn receive) override;
  void detach(Ipv4Address addr) override;
  void send(Ipv4Address from, Ipv4Address to, util::Bytes frame) override;
  void call_later(util::TimeUs delay, std::function<void()> fn) override;

  /// Pump the socket and the timer heap for up to `budget` of clock time
  /// (0 = one non-blocking pass). Everything the backend does -- reads,
  /// sink dispatch, timer callbacks -- happens here, on this thread.
  /// Returns the number of events handled (frames delivered + timers
  /// fired), so callers can loop `while (work_pending()) poll(...)` or
  /// alternate two in-process transports.
  std::size_t poll(util::TimeUs budget);

  /// True while frames sit in the receive queue or timers are pending.
  bool work_pending() const { return !rx_queue_.empty() || !timers_.empty(); }

  struct Counters {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> tx_wire{0};       // left on the socket
    std::atomic<std::uint64_t> received{0};      // read off the socket
    std::atomic<std::uint64_t> delivered{0};     // handed to a sink
    std::atomic<std::uint64_t> unknown_peer{0};  // no endpoint for `to`
    std::atomic<std::uint64_t> oversized{0};     // MTU clamp or EMSGSIZE
    std::atomic<std::uint64_t> send_failed{0};   // other sendto errno
    std::atomic<std::uint64_t> rx_queue_full{0}; // bounded queue overflow
    std::atomic<std::uint64_t> rx_malformed{0};  // shorter than an IP header
    std::atomic<std::uint64_t> no_sink{0};       // no attach() for dest
  };
  const Counters& counters() const { return counters_; }

  Totals totals() const override;
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const override;

 private:
  struct Timer {
    util::TimeUs deadline;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.deadline != b.deadline ? a.deadline > b.deadline
                                      : a.seq > b.seq;
    }
  };

  std::size_t drain_socket();
  std::size_t dispatch_rx();
  std::size_t fire_due_timers();
  util::TimeUs next_timer_delta() const;

  const util::Clock& clock_;
  UdpTransportConfig config_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::string error_;
  std::map<Ipv4Address, ReceiveFn> sinks_;
  std::map<Ipv4Address, std::uint64_t> peers_;  // addr -> packed sockaddr
  std::deque<util::Bytes> rx_queue_;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  std::uint64_t next_seq_ = 0;
  Counters counters_;
};

}  // namespace fbs::net
