// IPv4 fragmentation and reassembly.
//
// The 4.4BSD output path the paper hooks into is: (1) options/route,
// (2) fragmentation, (3) interface transmit -- with FBSSend() between (1)
// and (2) so FBS "receives the benefits of IP fragmentation and reassembly"
// (Section 7.2). This module is step (2) on the send side and the
// post-receive reassembly queue on the input side.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/ip.hpp"
#include "util/clock.hpp"

namespace fbs::net {

/// Split (header, payload) into wire packets that fit `mtu` bytes each.
/// Returns an empty vector if the payload needs fragmenting but the header
/// has DF set (the caller should count this as a drop). A payload that fits
/// yields exactly one packet.
std::vector<util::Bytes> fragment(const Ipv4Header& header,
                                  util::BytesView payload, std::size_t mtu);

/// Reassembly queue keyed by (source, destination, id, protocol), with the
/// classic timer that discards incomplete datagrams.
class Reassembler {
 public:
  /// Largest payload any fragment set may describe: a 16-bit total_length
  /// minus the option-free header. Fragments reaching past this are forged
  /// or corrupted and are rejected before they touch reassembly state.
  static constexpr std::size_t kMaxReassembledPayload =
      0xFFFF - Ipv4Header::kSize;
  /// Hard cap on stored pieces per datagram. A full-size datagram
  /// fragmented at the RFC 791 minimum MTU of 68 arrives in at most
  /// ceil(65515 / 48) = 1366 pieces; anything past this cap is a flood
  /// aimed at reassembly memory and the O(pieces) duplicate scan, and
  /// drops the whole partial datagram.
  static constexpr std::size_t kMaxPieces = 2048;

  explicit Reassembler(const util::Clock& clock,
                       util::TimeUs timeout = util::seconds(30))
      : clock_(clock), timeout_(timeout) {}

  /// Feed one received fragment (or whole datagram). Returns the completed
  /// datagram payload + header once all pieces are present.
  std::optional<Ipv4Packet> push(const Ipv4Header& header,
                                         util::Bytes payload);

  /// Drop timed-out partial datagrams; returns how many were discarded.
  std::size_t expire();

  std::size_t pending() const { return partial_.size(); }

 private:
  struct Key {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint16_t id;
    std::uint8_t proto;
    auto operator<=>(const Key&) const = default;
  };
  struct Piece {
    // Byte offsets go up to 8 * 8191 = 65528 and intermediate sums exceed
    // 16 bits, so keep the arithmetic in std::size_t.
    std::size_t offset_bytes;
    util::Bytes data;
  };
  struct Partial {
    std::vector<Piece> pieces;
    std::optional<std::size_t> total_size;  // known once the last frag arrives
    Ipv4Header first_header;
    util::TimeUs arrival;
  };

  const util::Clock& clock_;
  util::TimeUs timeout_;
  std::map<Key, Partial> partial_;
};

}  // namespace fbs::net
