// Minimal TCP: enough of RFC 793 to run the paper's ttcp/rcp-style bulk
// transfers over the simulated network -- three-way handshake, cumulative
// ACKs, a fixed-size sliding window, timeout retransmission with backoff,
// in-order delivery, FIN teardown.
//
// The deliberate tie-in to the paper: tcp_output() in 4.4BSD "attempts to
// calculate exactly how much data it can place in a packet without
// triggering fragmentation ... and sets the DF flag", which broke when the
// FBS header was inserted until the calculation was fixed (Section 7.2).
// This TCP does the same: every data segment is sized from
// IpStack::effective_payload_size() -- which accounts for installed
// security-hook overhead -- and sent with DF. Disable that accounting and
// transfers stall exactly the way the unpatched kernel did.
//
// Not implemented (documented simplifications): congestion control, SACK,
// urgent data, simultaneous open, window scaling, RST handling beyond
// teardown.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "net/headers.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"
#include "net/stack.hpp"

namespace fbs::net {

class TcpService;

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  enum class State {
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait,    // we sent FIN, awaiting its ACK (and peer FIN)
    kCloseWait,  // peer sent FIN, we still may send
    kClosed,
  };

  using ReceiveFn = std::function<void(util::BytesView data)>;
  using ClosedFn = std::function<void()>;

  /// Deliverable application data arrives here, in order.
  void on_receive(ReceiveFn fn) { receive_ = std::move(fn); }
  /// Called once when the connection fully closes (or aborts).
  void on_closed(ClosedFn fn) { closed_ = std::move(fn); }

  /// Queue bytes for transmission. Returns false once closing/closed.
  bool send(util::BytesView data);

  /// Graceful close: FIN after the send buffer drains.
  void close();
  /// Abort: drop all state immediately.
  void abort();

  State state() const { return state_; }
  std::size_t mss() const { return mss_; }

  struct Counters {
    std::uint64_t segments_sent = 0;
    std::uint64_t segments_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t out_of_order = 0;
    std::uint64_t duplicate_segments = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  friend class TcpService;

  TcpConnection(TcpService& service, Ipv4Address peer,
                std::uint16_t local_port, std::uint16_t peer_port,
                std::uint32_t initial_seq);

  void start_connect();
  void start_accept(std::uint32_t peer_isn);
  void on_segment(const TcpHeader& header, util::Bytes payload);
  void pump_output();
  void emit_segment(util::BytesView payload, bool syn, bool fin, bool force_ack);
  void arm_retransmit_timer();
  void on_retransmit_timer(std::uint64_t epoch);
  void deliver_in_order();
  void become_closed();

  TcpService& service_;
  Ipv4Address peer_;
  std::uint16_t local_port_;
  std::uint16_t peer_port_;
  State state_ = State::kSynSent;
  std::size_t mss_ = 536;

  // Send side. snd_una_..snd_next_ is in flight; send_buffer_ holds bytes
  // not yet segmented (send_buffer_ starts at sequence snd_next_).
  std::uint32_t snd_una_ = 0;   // oldest unacknowledged sequence
  std::uint32_t snd_next_ = 0;  // next sequence to send
  std::deque<std::uint8_t> send_buffer_;
  std::map<std::uint32_t, util::Bytes> in_flight_;  // seq -> payload
  bool fin_pending_ = false;   // close() requested
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;
  int backoff_ = 0;
  std::uint64_t timer_epoch_ = 0;  // invalidates stale timers
  bool timer_armed_ = false;

  // Receive side.
  std::uint32_t rcv_next_ = 0;  // next expected sequence
  std::map<std::uint32_t, util::Bytes> reorder_;  // out-of-order segments
  bool peer_fin_received_ = false;
  std::uint32_t peer_fin_seq_ = 0;

  ReceiveFn receive_;
  ClosedFn closed_;
  /// Pending accept callback for passive opens; fired on ESTABLISHED.
  std::function<void(std::shared_ptr<TcpConnection>)> accept_;
  Counters counters_;
};

class TcpService {
 public:
  using AcceptFn = std::function<void(std::shared_ptr<TcpConnection>)>;

  /// `network` supplies protocol timers (call_later).
  TcpService(IpStack& stack, Transport& network, util::RandomSource& rng);

  /// Accept connections on `port`.
  void listen(std::uint16_t port, AcceptFn on_accept);

  /// Active open. The returned connection starts in kSynSent; install
  /// callbacks immediately.
  std::shared_ptr<TcpConnection> connect(Ipv4Address peer,
                                         std::uint16_t peer_port);

  /// Currently tracked connections (established or in teardown).
  std::size_t connection_count() const { return connections_.size(); }

  /// Retransmission timeout base; doubles per retry (max kMaxRetries).
  static constexpr util::TimeUs kRto = util::TimeUs{200'000};
  static constexpr int kMaxRetries = 8;
  static constexpr std::size_t kWindowSegments = 32;

 private:
  friend class TcpConnection;

  struct ConnKey {
    std::uint32_t peer_addr;
    std::uint16_t peer_port;
    std::uint16_t local_port;
    auto operator<=>(const ConnKey&) const = default;
  };

  void on_packet(const Ipv4Header& ip, util::Bytes payload);
  void send_segment(Ipv4Address peer, const TcpHeader& header,
                    util::BytesView payload);
  void remove(TcpConnection& conn);
  std::uint16_t ephemeral_port();

  IpStack& stack_;
  Transport& network_;
  util::RandomSource& rng_;
  std::map<ConnKey, std::shared_ptr<TcpConnection>> connections_;
  std::map<std::uint16_t, AcceptFn> listeners_;
  std::uint16_t next_ephemeral_ = 0;
};

}  // namespace fbs::net
