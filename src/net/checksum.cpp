#include "net/checksum.hpp"

namespace fbs::net {

void ChecksumAccumulator::add(util::BytesView data) {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // The previous span ended mid-word; this byte is that word's low half.
    acc_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2)
    acc_ += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  if (i < data.size()) {
    acc_ += static_cast<std::uint32_t>(data[i]) << 8;
    odd_ = true;
  }
}

std::uint16_t ChecksumAccumulator::finish() const {
  return checksum_finish(acc_);
}

std::uint32_t checksum_partial(std::uint32_t acc, util::BytesView data) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    acc += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i]) << 8;
  return acc;
}

std::uint16_t checksum_finish(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xFFFF);
}

std::uint16_t internet_checksum(util::BytesView data) {
  return checksum_finish(checksum_partial(0, data));
}

}  // namespace fbs::net
