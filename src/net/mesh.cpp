#include "net/mesh.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace fbs::net {

// --- TransitRouter ---------------------------------------------------------

TransitRouter::TransitRouter(Transport& net, const util::Clock& clock,
                             Ipv4Address addr, util::RandomSource& rng,
                             std::size_t mtu)
    : net_(net), clock_(clock), stack_(net, clock, addr, mtu), rng_(rng) {
  stack_.enable_forwarding(true);
  stack_.set_transmit_hook([this](Ipv4Address next_hop, util::Bytes frame) {
    transmit(next_hop, std::move(frame));
  });
}

void TransitRouter::add_link(Ipv4Address neighbor,
                             const TransitLinkConfig& config) {
  links_.emplace(neighbor,
                 std::make_unique<Link>(neighbor, config, rng_));
}

void TransitRouter::transmit(Ipv4Address next_hop, util::Bytes frame) {
  if (down_) {
    ++stats_.down_dropped;
    return;
  }
  const auto it = links_.find(next_hop);
  if (it == links_.end()) {
    // No adjacency toward the next hop. This is what turns the
    // fully-connected SimNetwork into a topology: without a route the
    // stack's next_hop_for falls back to the destination itself, and
    // unless that destination is a direct neighbor the frame dies here.
    ++stats_.no_route_dropped;
    return;
  }
  Link& link = *it->second;
  if (link.queue.push(std::move(frame), clock_.now()) ==
      LinkQueue::Enqueue::kAccepted) {
    update_congestion(link);
    start_tx(link);
  }
}

void TransitRouter::start_tx(Link& link) {
  if (down_ || link.busy || link.paused) return;
  auto item = link.queue.pop();
  if (!item) return;
  link.queue_delay.record_ns(
      static_cast<double>(clock_.now() - item->enqueued_at) * 1000.0);
  link.busy = true;
  const util::TimeUs tx_time =
      link.cfg.bandwidth_bps > 0
          ? static_cast<util::TimeUs>(static_cast<double>(item->frame.size()) *
                                      8.0 * 1e6 / link.cfg.bandwidth_bps)
          : util::TimeUs{0};
  Link* lp = &link;  // stable: links_ values are unique_ptr-owned
  net_.call_later(tx_time, [this, lp, frame = std::move(item->frame)]() {
    lp->busy = false;
    if (down_) {
      // The frame was on the serializer when the router died with it.
      ++lp->crash_tx_dropped;
    } else {
      ++lp->sent;
      net_.send(address(), lp->neighbor, frame);
    }
    update_congestion(*lp);
    start_tx(*lp);
  });
}

void TransitRouter::update_congestion(Link& link) {
  if (link.cfg.queue.discipline != QueueDiscipline::kBackpressure) return;
  if (!link.xoff_raised && link.queue.above_high()) {
    link.xoff_raised = true;
    if (congested_links_++ == 0 && congestion_) congestion_(address(), true);
  } else if (link.xoff_raised && link.queue.below_low()) {
    link.xoff_raised = false;
    if (--congested_links_ == 0 && congestion_) congestion_(address(), false);
  }
}

void TransitRouter::pause_link(Ipv4Address neighbor) {
  const auto it = links_.find(neighbor);
  if (it == links_.end()) return;
  Link& link = *it->second;
  if (link.paused) return;
  link.paused = true;
  ++link.pauses;
  const std::uint64_t epoch = ++link.pause_epoch;
  Link* lp = &link;
  // PFC-style watchdog: a pause that is never lifted (downstream crashed
  // before its xon, or a signaling cycle formed) self-expires, trading a
  // possible burst of drops for guaranteed liveness.
  net_.call_later(link.cfg.pause_timeout, [this, lp, epoch]() {
    if (lp->paused && lp->pause_epoch == epoch) {
      lp->paused = false;
      start_tx(*lp);
    }
  });
}

void TransitRouter::resume_link(Ipv4Address neighbor) {
  const auto it = links_.find(neighbor);
  if (it == links_.end()) return;
  Link& link = *it->second;
  if (!link.paused) return;
  link.paused = false;
  ++link.pause_epoch;  // invalidate the watchdog
  start_tx(link);
}

void TransitRouter::crash() {
  if (down_) return;
  down_ = true;
  ++stats_.crashes;
  for (auto& [addr, link] : links_) {
    link->queue.wipe();
    // Upstream pauses we caused must not outlive us longer than the
    // watchdog; clearing our own xoff state keeps the signal symmetric.
    if (link->xoff_raised) {
      link->xoff_raised = false;
      if (--congested_links_ == 0 && congestion_) congestion_(address(), false);
    }
    link->paused = false;
    ++link->pause_epoch;
  }
}

void TransitRouter::restart() {
  if (!down_) return;
  down_ = false;
  for (auto& [addr, link] : links_) start_tx(*link);
}

std::vector<Ipv4Address> TransitRouter::neighbors() const {
  std::vector<Ipv4Address> out;
  out.reserve(links_.size());
  for (const auto& [addr, link] : links_) out.push_back(addr);
  return out;
}

const TransitRouter::LinkStats* TransitRouter::link_stats(
    Ipv4Address neighbor) const {
  const auto it = links_.find(neighbor);
  if (it == links_.end()) return nullptr;
  static thread_local LinkStats snap;
  const Link& link = *it->second;
  snap.queue = link.queue.stats();
  snap.sent = link.sent;
  snap.crash_tx_dropped = link.crash_tx_dropped;
  snap.pauses = link.pauses;
  snap.depth = link.queue.depth();
  snap.paused = link.paused;
  return &snap;
}

const LinkQueue* TransitRouter::link_queue(Ipv4Address neighbor) const {
  const auto it = links_.find(neighbor);
  return it == links_.end() ? nullptr : &it->second->queue;
}

void TransitRouter::register_metrics(obs::MetricsRegistry& registry,
                                     const std::string& prefix) const {
  registry.add_source([this, prefix](obs::MetricsRegistry::Emitter& out) {
    out.counter(prefix + ".no_route_dropped", stats_.no_route_dropped);
    out.counter(prefix + ".down_dropped", stats_.down_dropped);
    out.counter(prefix + ".crashes", stats_.crashes);
    out.gauge(prefix + ".down", down_ ? 1.0 : 0.0);
    for (const auto& [addr, link] : links_) {
      const std::string lp = prefix + ".link." + addr.to_string();
      const LinkQueue::Stats& q = link->queue.stats();
      out.counter(lp + ".enqueued", q.enqueued);
      out.counter(lp + ".dequeued", q.dequeued);
      out.counter(lp + ".tail_dropped", q.tail_dropped);
      out.counter(lp + ".red_dropped", q.red_dropped);
      out.counter(lp + ".wiped", q.wiped);
      out.counter(lp + ".sent", link->sent);
      out.counter(lp + ".crash_tx_dropped", link->crash_tx_dropped);
      out.counter(lp + ".pauses", link->pauses);
      out.gauge(lp + ".depth", static_cast<double>(link->queue.depth()));
      out.gauge(lp + ".highwater", static_cast<double>(q.highwater));
      out.gauge(lp + ".paused", link->paused ? 1.0 : 0.0);
      out.latency(lp + ".queue_delay", link->queue_delay.summary());
    }
  });
}

// --- MeshNetwork -----------------------------------------------------------

TransitRouter& MeshNetwork::add_router(Ipv4Address addr) {
  auto router =
      std::make_unique<TransitRouter>(net_, clock_, addr, rng_);
  router->set_congestion_signal([this](Ipv4Address reporter, bool on) {
    // Hop-local xoff: every up neighbor stops (resumes) draining toward the
    // congested router. The congested router's own egress keeps going --
    // backpressure slows the inflow, it never freezes the drain.
    for (const Edge& e : edges_) {
      if (e.down) continue;
      const Ipv4Address peer =
          e.a == reporter ? e.b : (e.b == reporter ? e.a : Ipv4Address{});
      if (peer.value == 0) continue;
      auto it = routers_.find(peer);
      if (it == routers_.end() || it->second->down()) continue;
      if (on) {
        it->second->pause_link(reporter);
      } else {
        it->second->resume_link(reporter);
      }
    }
  });
  TransitRouter& ref = *router;
  routers_.emplace(addr, std::move(router));
  order_.push_back(addr);
  return ref;
}

void MeshNetwork::connect(Ipv4Address a, Ipv4Address b,
                          const TransitLinkConfig& config) {
  routers_.at(a)->add_link(b, config);
  routers_.at(b)->add_link(a, config);
  if (sim_) sim_->set_link(a, b, config.wire);
  edges_.push_back(Edge{a, b, false});
}

void MeshNetwork::attach_host(Ipv4Address host, Ipv4Address router,
                              const TransitLinkConfig& config) {
  routers_.at(router)->add_link(host, config);
  if (sim_) sim_->set_link(host, router, config.wire);
  hosts_[host] = router;
}

void MeshNetwork::recompute_routes() {
  // BFS shortest paths from every router over the live graph. Neighbor
  // expansion follows edges_ in insertion order with std::map-ordered
  // adjacency below; fully deterministic, so equal-cost ties always break
  // the same way (lowest-address first hop for the diamond's two paths).
  std::map<Ipv4Address, std::vector<Ipv4Address>> adj;
  for (const Edge& e : edges_) {
    if (e.down) continue;
    if (routers_.at(e.a)->down() || routers_.at(e.b)->down()) continue;
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }
  for (auto& [addr, ns] : adj) std::sort(ns.begin(), ns.end());

  for (auto& [src, router] : routers_) {
    router->stack().clear_routes();
    if (router->down()) continue;

    // first_hop[d] = neighbor of src on a shortest path to d.
    std::map<Ipv4Address, Ipv4Address> first_hop;
    std::deque<Ipv4Address> frontier{src};
    std::set<Ipv4Address> visited{src};
    while (!frontier.empty()) {
      const Ipv4Address at = frontier.front();
      frontier.pop_front();
      const auto ns = adj.find(at);
      if (ns == adj.end()) continue;
      for (Ipv4Address next : ns->second) {
        if (!visited.insert(next).second) continue;
        first_hop[next] = at == src ? next : first_hop[at];
        frontier.push_back(next);
      }
    }

    for (const auto& [dst, hop] : first_hop) {
      router->stack().add_route(dst, 32, hop);
    }
    for (const auto& [host, access] : hosts_) {
      if (access == src) continue;  // direct link; no route needed
      const auto hop = first_hop.find(access);
      if (hop == first_hop.end()) continue;  // unreachable: drop at transmit
      router->stack().add_route(host, 32, hop->second);
    }
  }
}

void MeshNetwork::schedule(util::TimeUs at, std::function<void()> fn) {
  const util::TimeUs now = clock_.now();
  net_.call_later(at > now ? at - now : util::TimeUs{0}, std::move(fn));
}

void MeshNetwork::set_edge_state(Ipv4Address a, Ipv4Address b, bool down) {
  for (Edge& e : edges_) {
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) e.down = down;
  }
}

void MeshNetwork::flap_link(Ipv4Address a, Ipv4Address b, util::TimeUs from,
                            util::TimeUs until) {
  if (sim_) sim_->partition(a, b, from, until);
  schedule(from, [this, a, b]() {
    set_edge_state(a, b, true);
    recompute_routes();
  });
  schedule(until, [this, a, b]() {
    set_edge_state(a, b, false);
    recompute_routes();
  });
}

void MeshNetwork::crash_router(Ipv4Address router, util::TimeUs at,
                               util::TimeUs until) {
  if (sim_) sim_->partition_host(router, at, until);
  schedule(at, [this, router]() {
    routers_.at(router)->crash();
    recompute_routes();
  });
  schedule(until, [this, router]() {
    routers_.at(router)->restart();
    recompute_routes();
  });
}

MeshNetwork::Totals MeshNetwork::totals() const {
  Totals t;
  for (const auto& [addr, router] : routers_) {
    t.no_route_dropped += router->stats().no_route_dropped;
    t.down_dropped += router->stats().down_dropped;
    for (Ipv4Address n : router->neighbors()) {
      const LinkQueue* q = router->link_queue(n);
      const TransitRouter::LinkStats* ls = router->link_stats(n);
      t.enqueued += q->stats().enqueued;
      t.dequeued += q->stats().dequeued;
      t.tail_dropped += q->stats().tail_dropped;
      t.red_dropped += q->stats().red_dropped;
      t.wiped += q->stats().wiped;
      t.sent += ls->sent;
      t.crash_tx_dropped += ls->crash_tx_dropped;
      t.depth += q->depth();
    }
  }
  return t;
}

void MeshNetwork::register_metrics(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
  for (std::size_t i = 0; i < order_.size(); ++i) {
    routers_.at(order_[i])->register_metrics(
        registry, prefix + ".r" + std::to_string(i));
  }
}

// --- Topology builders -----------------------------------------------------

Ipv4Address mesh_router_address(std::size_t index) {
  // 10.200.0.0/24, host part 1..254.
  return Ipv4Address{(10u << 24) | (200u << 16) |
                     static_cast<std::uint32_t>(index + 1)};
}

std::vector<Ipv4Address> build_line(MeshNetwork& mesh, std::size_t n,
                                    const TransitLinkConfig& config) {
  std::vector<Ipv4Address> routers;
  for (std::size_t i = 0; i < n; ++i) {
    routers.push_back(mesh_router_address(i));
    mesh.add_router(routers.back());
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    mesh.connect(routers[i], routers[i + 1], config);
  }
  return routers;
}

std::vector<Ipv4Address> build_diamond(MeshNetwork& mesh,
                                       const TransitLinkConfig& config) {
  std::vector<Ipv4Address> r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.push_back(mesh_router_address(i));
    mesh.add_router(r.back());
  }
  mesh.connect(r[0], r[1], config);  // upper path
  mesh.connect(r[0], r[2], config);  // lower path
  mesh.connect(r[1], r[3], config);
  mesh.connect(r[2], r[3], config);
  return r;
}

std::vector<Ipv4Address> build_random_mesh(MeshNetwork& mesh, std::size_t n,
                                           std::size_t extra_edges,
                                           std::uint64_t seed,
                                           const TransitLinkConfig& config) {
  std::vector<Ipv4Address> routers;
  for (std::size_t i = 0; i < n; ++i) {
    routers.push_back(mesh_router_address(i));
    mesh.add_router(routers.back());
  }
  std::set<std::pair<std::size_t, std::size_t>> used;
  // Ring first: connectivity is guaranteed whatever the chords do.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    mesh.connect(routers[i], routers[j], config);
    used.insert({std::min(i, j), std::max(i, j)});
  }
  util::SplitMix64 rng(seed);
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < extra_edges && attempts < extra_edges * 50 + 100) {
    ++attempts;
    const std::size_t i = rng.next_below(n);
    const std::size_t j = rng.next_below(n);
    if (i == j) continue;
    if (!used.insert({std::min(i, j), std::max(i, j)}).second) continue;
    mesh.connect(routers[i], routers[j], config);
    ++added;
  }
  return routers;
}

}  // namespace fbs::net
