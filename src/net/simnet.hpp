// Discrete-event simulated network.
//
// Stands in for the paper's dedicated 10 Mb/s Ethernet segment (Section 7.3
// setup): hosts attach with an address and a receive callback; frames are
// delivered through per-pair links with configurable delay, jitter
// (reordering), loss, and duplication -- the "standard features of datagram
// communication" Section 3 says a security protocol must not change. A wire
// tap lets attack tests observe, drop, modify, and inject frames.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "net/ip.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::net {

struct LinkParams {
  util::TimeUs delay = util::TimeUs{200};   // one-way propagation
  util::TimeUs jitter = util::TimeUs{0};    // uniform extra delay; >0 reorders
  double loss = 0.0;                        // P(frame dropped)
  double duplicate = 0.0;                   // P(frame delivered twice)
  /// Serialization rate in bits/second; 0 = infinite. With a finite rate
  /// the link transmits one frame at a time (store-and-forward), so e.g.
  /// 10e6 models the paper's dedicated 10 Mb/s Ethernet in virtual time.
  double bandwidth_bps = 0.0;

  /// Gilbert-Elliott burst loss: the link flips between a good state (drop
  /// probability `loss`, as above) and a bad state (drop probability
  /// `burst_loss`), transitioning per frame with the two probabilities
  /// below. `burst_enter` == 0 (the default) keeps the plain i.i.d. model.
  double burst_enter = 0.0;  // P(good -> bad) per frame
  double burst_exit = 0.25;  // P(bad -> good) per frame
  double burst_loss = 1.0;   // P(frame dropped) while in the bad state

  /// P(a random bit of the frame is flipped in flight). Corruption is
  /// applied after the loss draw; receivers see the damaged frame.
  double corrupt = 0.0;
};

class SimNetwork : public Transport {
 public:
  using ReceiveFn = Transport::ReceiveFn;

  /// Verdict from the attacker tap for each frame entering the wire.
  enum class TapVerdict { kPass, kDrop };
  using Tap = std::function<TapVerdict(Ipv4Address from, Ipv4Address to,
                                       util::Bytes& frame)>;

  SimNetwork(util::VirtualClock& clock, std::uint64_t seed)
      : clock_(clock), rng_(seed) {}

  /// Attach a host. Frames addressed (at the simnet layer) to `addr` are
  /// handed to `receive`.
  void attach(Ipv4Address addr, ReceiveFn receive) override;
  void detach(Ipv4Address addr) override;

  /// Link characteristics between a specific pair (symmetric), else default.
  void set_default_link(const LinkParams& params) { default_link_ = params; }
  void set_link(Ipv4Address a, Ipv4Address b, const LinkParams& params);

  /// Install/remove the wire tap (sees every frame before link effects).
  void set_tap(Tap tap) { tap_ = std::move(tap); }
  void clear_tap() { tap_ = nullptr; }

  /// Sever the a<->b link (both directions) for virtual times
  /// [from, until): frames entering the wire inside the window are dropped
  /// and counted. Windows may overlap; expired windows are pruned lazily.
  void partition(Ipv4Address a, Ipv4Address b, util::TimeUs from,
                 util::TimeUs until);
  /// Isolate `host` from every peer for [from, until) -- a crashed NIC or
  /// an unplugged cable, as opposed to the pairwise cut above.
  void partition_host(Ipv4Address host, util::TimeUs from, util::TimeUs until);
  void clear_partitions() { partitions_.clear(); }

  /// Transmit a frame. Link effects (tap, loss, duplication, delay) apply.
  void send(Ipv4Address from, Ipv4Address to, util::Bytes frame) override;

  /// Inject a frame directly to a destination after `delay` -- bypasses the
  /// tap and link effects; this is the attacker's transmitter.
  void inject(Ipv4Address to, util::Bytes frame,
              util::TimeUs delay = util::TimeUs{0});

  /// Schedule an arbitrary callback on the simulation clock (protocol
  /// timers: TCP retransmission, sweepers, ...). Runs in event order with
  /// frame deliveries.
  void call_later(util::TimeUs delay, std::function<void()> fn) override;

  /// Deliver the earliest pending frame (advancing the clock to its time).
  /// Returns false when idle.
  bool step();
  /// Run until no events remain.
  void run();

  /// Relaxed-atomic, 64-bit: the chaos suite asserts frame-conservation
  /// invariants (sent == delivered + every loss bucket) over these while
  /// pipeline workers run, so reads must be tear-free and wraps impossible.
  struct Counters {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> lost{0};        // i.i.d. (good-state) loss
    std::atomic<std::uint64_t> burst_lost{0};  // Gilbert bad-state loss
    std::atomic<std::uint64_t> corrupted{0};   // bit flipped in flight
    std::atomic<std::uint64_t> partition_dropped{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> tap_dropped{0};
    std::atomic<std::uint64_t> no_such_host{0};
    std::atomic<std::uint64_t> injected{0};   // frames via inject()
    std::atomic<std::uint64_t> in_flight{0};  // queued frames (not timers)
  };
  const Counters& counters() const { return counters_; }

  /// Uniform transport accounting (see Transport::Totals): received and
  /// tx_wire stay zero -- every frame either reaches a local sink or lands
  /// in one of the fault buckets folded into `dropped`.
  Totals totals() const override;

  /// Publish the fault counters as a pull source under `<prefix>.` names
  /// (e.g. `net.delivered`, `net.burst_lost`), plus the uniform
  /// `<prefix>.transport.*` family shared with every backend.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const override;

 private:
  struct Event {
    util::TimeUs time;
    std::uint64_t seq;  // tie-break for determinism
    Ipv4Address to;
    util::Bytes frame;
    std::function<void()> callback;  // if set, a timer event
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  struct Partition {
    bool all_links = false;  // host isolation: `a` cut off from everyone
    Ipv4Address a;
    Ipv4Address b;
    util::TimeUs from = 0;
    util::TimeUs until = 0;
  };

  const LinkParams& link_for(Ipv4Address a, Ipv4Address b) const;
  void schedule(Ipv4Address to, util::Bytes frame, util::TimeUs delay);
  bool partitioned(Ipv4Address from, Ipv4Address to);
  bool burst_drop(Ipv4Address from, Ipv4Address to, const LinkParams& link);

  util::VirtualClock& clock_;
  util::SplitMix64 rng_;
  std::map<Ipv4Address, ReceiveFn> hosts_;
  std::map<std::pair<Ipv4Address, Ipv4Address>, LinkParams> links_;
  std::map<std::pair<Ipv4Address, Ipv4Address>, util::TimeUs> link_busy_until_;
  std::map<std::pair<Ipv4Address, Ipv4Address>, bool> burst_bad_;
  std::vector<Partition> partitions_;
  LinkParams default_link_;
  Tap tap_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t next_seq_ = 0;
  Counters counters_;
};

}  // namespace fbs::net
