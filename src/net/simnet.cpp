#include "net/simnet.hpp"

#include <algorithm>

namespace fbs::net {

void SimNetwork::attach(Ipv4Address addr, ReceiveFn receive) {
  hosts_[addr] = std::move(receive);
}

void SimNetwork::detach(Ipv4Address addr) { hosts_.erase(addr); }

void SimNetwork::set_link(Ipv4Address a, Ipv4Address b,
                          const LinkParams& params) {
  links_[{std::min(a, b), std::max(a, b)}] = params;
}

const LinkParams& SimNetwork::link_for(Ipv4Address a, Ipv4Address b) const {
  const auto it = links_.find({std::min(a, b), std::max(a, b)});
  return it == links_.end() ? default_link_ : it->second;
}

void SimNetwork::partition(Ipv4Address a, Ipv4Address b, util::TimeUs from,
                           util::TimeUs until) {
  partitions_.push_back(
      {false, std::min(a, b), std::max(a, b), from, until});
}

void SimNetwork::partition_host(Ipv4Address host, util::TimeUs from,
                                util::TimeUs until) {
  partitions_.push_back({true, host, host, from, until});
}

bool SimNetwork::partitioned(Ipv4Address from, Ipv4Address to) {
  const util::TimeUs now = clock_.now();
  const Ipv4Address lo = std::min(from, to);
  const Ipv4Address hi = std::max(from, to);
  bool cut = false;
  std::erase_if(partitions_, [&](const Partition& p) {
    if (now >= p.until) return true;  // window over; prune
    if (now >= p.from &&
        (p.all_links ? (p.a == from || p.a == to)
                     : (p.a == lo && p.b == hi)))
      cut = true;
    return false;
  });
  return cut;
}

bool SimNetwork::burst_drop(Ipv4Address from, Ipv4Address to,
                            const LinkParams& link) {
  bool bad = false;
  if (link.burst_enter > 0) {
    // Evolve the two-state Gilbert chain one step for this frame, then draw
    // against the state's loss probability.
    bool& state = burst_bad_[{std::min(from, to), std::max(from, to)}];
    if (state) {
      if (rng_.next_double() < link.burst_exit) state = false;
    } else {
      if (rng_.next_double() < link.burst_enter) state = true;
    }
    bad = state;
  }
  const double p = bad ? link.burst_loss : link.loss;
  if (!(p > 0) || rng_.next_double() >= p) return false;
  ++(bad ? counters_.burst_lost : counters_.lost);
  return true;
}

void SimNetwork::schedule(Ipv4Address to, util::Bytes frame,
                          util::TimeUs delay) {
  Event ev;
  ev.time = clock_.now() + delay;
  ev.seq = next_seq_++;
  ev.to = to;
  ev.frame = std::move(frame);
  ++counters_.in_flight;
  queue_.push(std::move(ev));
}

void SimNetwork::send(Ipv4Address from, Ipv4Address to, util::Bytes frame) {
  ++counters_.sent;
  capture(from, to, frame, /*outbound=*/true);
  if (tap_) {
    if (tap_(from, to, frame) == TapVerdict::kDrop) {
      ++counters_.tap_dropped;
      return;
    }
  }
  if (partitioned(from, to)) {
    ++counters_.partition_dropped;
    return;
  }
  const LinkParams& link = link_for(from, to);
  if (burst_drop(from, to, link)) return;
  if (link.corrupt > 0 && rng_.next_double() < link.corrupt &&
      !frame.empty()) {
    // One random bit flip; duplicates below carry the same damage, as if
    // the frame was corrupted before the duplicating segment.
    frame[rng_.next_below(frame.size())] ^=
        static_cast<std::uint8_t>(1u << rng_.next_below(8));
    ++counters_.corrupted;
  }

  // Serialization: a finite-rate link sends one frame at a time.
  util::TimeUs tx_done_offset = 0;
  if (link.bandwidth_bps > 0) {
    const auto key = std::make_pair(std::min(from, to), std::max(from, to));
    const util::TimeUs tx_time = static_cast<util::TimeUs>(
        static_cast<double>(frame.size()) * 8.0 / link.bandwidth_bps * 1e6);
    util::TimeUs& busy_until = link_busy_until_[key];
    const util::TimeUs start = std::max(clock_.now(), busy_until);
    busy_until = start + tx_time;
    tx_done_offset = busy_until - clock_.now();
  }

  auto delay_draw = [&] {
    return tx_done_offset + link.delay +
           (link.jitter > 0
                ? static_cast<util::TimeUs>(rng_.next_below(
                      static_cast<std::uint64_t>(link.jitter)))
                : util::TimeUs{0});
  };
  if (link.duplicate > 0 && rng_.next_double() < link.duplicate) {
    ++counters_.duplicated;
    schedule(to, frame, delay_draw());
  }
  schedule(to, std::move(frame), delay_draw());
}

void SimNetwork::inject(Ipv4Address to, util::Bytes frame, util::TimeUs delay) {
  ++counters_.injected;
  schedule(to, std::move(frame), delay);
}

void SimNetwork::call_later(util::TimeUs delay, std::function<void()> fn) {
  Event ev;
  ev.time = clock_.now() + delay;
  ev.seq = next_seq_++;
  ev.callback = std::move(fn);
  queue_.push(std::move(ev));
}

bool SimNetwork::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  if (ev.time > clock_.now()) clock_.set(ev.time);
  if (ev.callback) {
    ev.callback();
    return true;
  }
  const auto it = hosts_.find(ev.to);
  --counters_.in_flight;
  if (it == hosts_.end()) {
    ++counters_.no_such_host;
    return true;
  }
  ++counters_.delivered;
  it->second(std::move(ev.frame));
  return true;
}

Transport::Totals SimNetwork::totals() const {
  Totals t;
  t.sent = counters_.sent;
  t.duplicated = counters_.duplicated;
  t.injected = counters_.injected;
  t.delivered = counters_.delivered;
  t.dropped = counters_.lost + counters_.burst_lost +
              counters_.partition_dropped + counters_.tap_dropped +
              counters_.no_such_host;
  t.in_flight = counters_.in_flight;
  return t;
}

void SimNetwork::run() {
  while (step()) {
  }
}

void SimNetwork::register_metrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".sent", counters_.sent);
    emit.counter(prefix + ".delivered", counters_.delivered);
    emit.counter(prefix + ".lost", counters_.lost);
    emit.counter(prefix + ".burst_lost", counters_.burst_lost);
    emit.counter(prefix + ".corrupted", counters_.corrupted);
    emit.counter(prefix + ".partition_dropped",
                 counters_.partition_dropped);
    emit.counter(prefix + ".duplicated", counters_.duplicated);
    emit.counter(prefix + ".tap_dropped", counters_.tap_dropped);
    emit.counter(prefix + ".no_such_host", counters_.no_such_host);
    emit.counter(prefix + ".injected", counters_.injected);
  });
  register_transport_metrics(registry, prefix);
}

}  // namespace fbs::net
