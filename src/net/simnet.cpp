#include "net/simnet.hpp"

#include <algorithm>

namespace fbs::net {

void SimNetwork::attach(Ipv4Address addr, ReceiveFn receive) {
  hosts_[addr] = std::move(receive);
}

void SimNetwork::detach(Ipv4Address addr) { hosts_.erase(addr); }

void SimNetwork::set_link(Ipv4Address a, Ipv4Address b,
                          const LinkParams& params) {
  links_[{std::min(a, b), std::max(a, b)}] = params;
}

const LinkParams& SimNetwork::link_for(Ipv4Address a, Ipv4Address b) const {
  const auto it = links_.find({std::min(a, b), std::max(a, b)});
  return it == links_.end() ? default_link_ : it->second;
}

void SimNetwork::schedule(Ipv4Address to, util::Bytes frame,
                          util::TimeUs delay) {
  Event ev;
  ev.time = clock_.now() + delay;
  ev.seq = next_seq_++;
  ev.to = to;
  ev.frame = std::move(frame);
  queue_.push(std::move(ev));
}

void SimNetwork::send(Ipv4Address from, Ipv4Address to, util::Bytes frame) {
  ++counters_.sent;
  if (tap_) {
    if (tap_(from, to, frame) == TapVerdict::kDrop) {
      ++counters_.tap_dropped;
      return;
    }
  }
  const LinkParams& link = link_for(from, to);
  if (link.loss > 0 && rng_.next_double() < link.loss) {
    ++counters_.lost;
    return;
  }

  // Serialization: a finite-rate link sends one frame at a time.
  util::TimeUs tx_done_offset = 0;
  if (link.bandwidth_bps > 0) {
    const auto key = std::make_pair(std::min(from, to), std::max(from, to));
    const util::TimeUs tx_time = static_cast<util::TimeUs>(
        static_cast<double>(frame.size()) * 8.0 / link.bandwidth_bps * 1e6);
    util::TimeUs& busy_until = link_busy_until_[key];
    const util::TimeUs start = std::max(clock_.now(), busy_until);
    busy_until = start + tx_time;
    tx_done_offset = busy_until - clock_.now();
  }

  auto delay_draw = [&] {
    return tx_done_offset + link.delay +
           (link.jitter > 0
                ? static_cast<util::TimeUs>(rng_.next_below(
                      static_cast<std::uint64_t>(link.jitter)))
                : util::TimeUs{0});
  };
  if (link.duplicate > 0 && rng_.next_double() < link.duplicate) {
    ++counters_.duplicated;
    schedule(to, frame, delay_draw());
  }
  schedule(to, std::move(frame), delay_draw());
}

void SimNetwork::inject(Ipv4Address to, util::Bytes frame, util::TimeUs delay) {
  schedule(to, std::move(frame), delay);
}

void SimNetwork::call_later(util::TimeUs delay, std::function<void()> fn) {
  Event ev;
  ev.time = clock_.now() + delay;
  ev.seq = next_seq_++;
  ev.callback = std::move(fn);
  queue_.push(std::move(ev));
}

bool SimNetwork::step() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  if (ev.time > clock_.now()) clock_.set(ev.time);
  if (ev.callback) {
    ev.callback();
    return true;
  }
  const auto it = hosts_.find(ev.to);
  if (it == hosts_.end()) {
    ++counters_.no_such_host;
    return true;
  }
  ++counters_.delivered;
  it->second(std::move(ev.frame));
  return true;
}

void SimNetwork::run() {
  while (step()) {
  }
}

}  // namespace fbs::net
