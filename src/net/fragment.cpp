#include "net/fragment.hpp"

#include <algorithm>

namespace fbs::net {

std::vector<util::Bytes> fragment(const Ipv4Header& header,
                                  util::BytesView payload, std::size_t mtu) {
  std::vector<util::Bytes> out;
  const std::size_t hlen = header.header_size();
  if (hlen + payload.size() <= mtu) {
    out.push_back(header.serialize(payload));
    return out;
  }
  if (header.dont_fragment) return out;  // needs fragmenting but DF set

  // Per-fragment payload must be a multiple of 8 bytes (offset unit).
  if (mtu <= hlen) return out;
  const std::size_t max_data = (mtu - hlen) / 8 * 8;
  if (max_data == 0) return out;

  std::size_t off = 0;
  while (off < payload.size()) {
    const std::size_t n = std::min(max_data, payload.size() - off);
    Ipv4Header fh = header;
    fh.fragment_offset = static_cast<std::uint16_t>(off / 8);
    fh.more_fragments = off + n < payload.size();
    out.push_back(fh.serialize(payload.subspan(off, n)));
    off += n;
  }
  return out;
}

std::optional<Ipv4Packet> Reassembler::push(const Ipv4Header& header,
                                                    util::Bytes payload) {
  if (!header.more_fragments && header.fragment_offset == 0) {
    // Unfragmented datagram: pass straight through.
    return Ipv4Packet{header, std::move(payload)};
  }

  // Widened before scaling: the 13-bit wire offset reaches 8191, so byte
  // offsets go up to 65528 and would wrap in 16-bit arithmetic.
  const std::size_t offset_bytes =
      static_cast<std::size_t>(header.fragment_offset) * 8;

  // Reject impossible fragments before they create or touch any state:
  // a non-final fragment whose payload is not a multiple of the 8-byte
  // offset unit cannot be followed contiguously (RFC 791), and no set of
  // fragments may describe a datagram larger than total_length can express.
  if (header.more_fragments && payload.size() % 8 != 0) return std::nullopt;
  if (offset_bytes + payload.size() > kMaxReassembledPayload)
    return std::nullopt;

  const Key key{header.source.value, header.destination.value, header.id,
                header.protocol};
  Partial& p = partial_[key];
  if (p.pieces.empty()) {
    p.arrival = clock_.now();
    p.first_header = header;
  }
  if (header.fragment_offset == 0) p.first_header = header;

  // Duplicate fragments (datagram services may duplicate) are ignored.
  const bool dup = std::any_of(
      p.pieces.begin(), p.pieces.end(),
      [&](const Piece& piece) { return piece.offset_bytes == offset_bytes; });
  if (!dup) {
    // A flood of distinct offsets far past what any real MTU produces can
    // only be an attack on reassembly memory and on the O(pieces)
    // duplicate scan; drop the whole datagram deterministically.
    if (p.pieces.size() >= kMaxPieces) {
      partial_.erase(key);
      return std::nullopt;
    }
    // First last-fragment wins: a later "last" fragment claiming a
    // different total (e.g. a forged short one) cannot shrink or grow an
    // already-announced datagram size.
    if (!header.more_fragments && !p.total_size)
      p.total_size = offset_bytes + payload.size();
    p.pieces.push_back(Piece{offset_bytes, std::move(payload)});
  }

  if (!p.total_size) return std::nullopt;

  // Complete iff [0, total_size) is covered. Overlapping fragments are
  // legal in IPv4 (retransmission through a different path can re-split),
  // so a piece starting at or before the covered watermark extends it;
  // only a piece starting beyond it leaves a hole.
  std::sort(p.pieces.begin(), p.pieces.end(),
            [](const Piece& a, const Piece& b) {
              return a.offset_bytes < b.offset_bytes;
            });
  std::size_t covered = 0;
  for (const Piece& piece : p.pieces) {
    if (piece.offset_bytes > covered) return std::nullopt;  // hole
    covered = std::max(covered, piece.offset_bytes + piece.data.size());
  }
  if (covered > *p.total_size) {
    // Coverage exceeds the announced size: fragments are inconsistent
    // (forged or corrupted). Reject the whole datagram deterministically
    // instead of stalling it until the reassembly timer fires.
    partial_.erase(key);
    return std::nullopt;
  }
  if (covered < *p.total_size) return std::nullopt;
  if (p.first_header.header_size() + covered > 0xFFFF) {
    // A first fragment with options can push the reassembled datagram past
    // what a 16-bit total_length expresses; such a set is unrepresentable.
    partial_.erase(key);
    return std::nullopt;
  }

  // Assemble in offset order, trimming overlap: where two fragments cover
  // the same bytes, the earlier-offset fragment's copy wins.
  Ipv4Packet done;
  done.header = p.first_header;
  done.header.more_fragments = false;
  done.header.fragment_offset = 0;
  // The carried-over total_length is the *first fragment's*, a lie about
  // the reassembled datagram; recompute it (the kMaxReassembledPayload
  // bound above keeps header + payload within the 16-bit field).
  done.header.total_length =
      static_cast<std::uint16_t>(done.header.header_size() + covered);
  done.payload.reserve(covered);
  for (const Piece& piece : p.pieces) {
    const std::size_t end = done.payload.size();
    if (piece.offset_bytes + piece.data.size() <= end) continue;
    const std::size_t skip = end - piece.offset_bytes;
    done.payload.insert(done.payload.end(), piece.data.begin() + skip,
                        piece.data.end());
  }
  partial_.erase(key);
  return done;
}

std::size_t Reassembler::expire() {
  const util::TimeUs now = clock_.now();
  std::size_t dropped = 0;
  for (auto it = partial_.begin(); it != partial_.end();) {
    if (now - it->second.arrival > timeout_) {
      it = partial_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace fbs::net
