// The datagram transport seam the paper assumes beneath the FBS engine:
// Send() a frame toward a peer address, register a frame-receive sink for a
// local binding, and close a conservation equation over every frame that
// enters the backend. Everything above this line -- IpStack, TcpService,
// the transit mesh, FBS endpoints and tunnels -- consumes `Transport&`;
// which wire actually moves the bytes (the discrete-event SimNetwork or a
// real UDP socket, see udp_transport.hpp) is the backend's business.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/ip.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"

namespace fbs::net {

class Transport {
 public:
  using ReceiveFn = std::function<void(util::Bytes frame)>;

  /// Observer for frames crossing the seam. `outbound` frames are captured
  /// at send() entry (like tcpdump on the sender: before any drop decision);
  /// inbound captures are backend-specific -- SimNetwork's shared wire makes
  /// them redundant, the UDP backend reports frames read off the socket.
  /// This is the hook PcapWriter attaches to.
  using CaptureFn = std::function<void(
      Ipv4Address from, Ipv4Address to, const util::Bytes& frame,
      bool outbound)>;

  virtual ~Transport() = default;

  /// Bind a local address: frames addressed to `addr` are handed to
  /// `receive`. Rebinding an address replaces the previous sink.
  virtual void attach(Ipv4Address addr, ReceiveFn receive) = 0;
  virtual void detach(Ipv4Address addr) = 0;

  /// Transmit one frame from `from` toward `to`. The backend owns the frame
  /// from here: it is eventually delivered, put on a real wire, or counted
  /// into exactly one drop bucket -- never silently lost (see Totals).
  virtual void send(Ipv4Address from, Ipv4Address to, util::Bytes frame) = 0;

  /// Schedule a callback on the backend's clock (protocol timers: TCP
  /// retransmission, sweepers, ...). SimNetwork runs these in virtual-time
  /// event order; UdpTransport fires them from its poll() pump.
  virtual void call_later(util::TimeUs delay, std::function<void()> fn) = 0;

  /// Uniform frame accounting every backend must close. After a drain
  /// (no frames pending) the conservation equation holds:
  ///
  ///   sent + received + duplicated + injected
  ///       == delivered + tx_wire + dropped + in_flight
  ///
  /// SimNetwork keeps received == tx_wire == 0 (both endpoints live inside
  /// one process); UdpTransport keeps duplicated == injected == 0 (the real
  /// wire does its own duplicating) and counts frames that left on the
  /// socket as tx_wire since their delivery is not observable locally.
  struct Totals {
    std::uint64_t sent = 0;        // frames entering send()
    std::uint64_t received = 0;    // frames read off a real wire
    std::uint64_t duplicated = 0;  // extra copies the backend created
    std::uint64_t injected = 0;    // frames entering outside send()
    std::uint64_t delivered = 0;   // frames handed to a local sink
    std::uint64_t tx_wire = 0;     // frames put on a real wire
    std::uint64_t dropped = 0;     // sum of the backend's drop buckets
    std::uint64_t in_flight = 0;   // accepted, not yet delivered/dropped
  };
  virtual Totals totals() const = 0;

  /// Publish the backend's counters as a pull source under `<prefix>.`.
  /// Implementations emit their backend-specific buckets and must also call
  /// register_transport_metrics() so the uniform `<prefix>.transport.*`
  /// family exists for every backend (the chaos suite asserts over it).
  virtual void register_metrics(obs::MetricsRegistry& registry,
                                const std::string& prefix) const = 0;

  void set_capture(CaptureFn fn) { capture_ = std::move(fn); }
  void clear_capture() { capture_ = nullptr; }

 protected:
  /// Emit the uniform `<prefix>.transport.*` names from totals().
  /// `in_flight` is a gauge (it drains back down); the rest are counters,
  /// so the registry's monotonicity checks apply to them.
  void register_transport_metrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) const;

  void capture(Ipv4Address from, Ipv4Address to, const util::Bytes& frame,
               bool outbound) const {
    if (capture_) capture_(from, to, frame, outbound);
  }
  bool capturing() const { return static_cast<bool>(capture_); }

 private:
  CaptureFn capture_;
};

}  // namespace fbs::net
