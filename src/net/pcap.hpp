// Standard pcap capture of FBS wire frames.
//
// Frames on the Transport seam are whole IPv4 packets, so captures use
// LINKTYPE_RAW (101): each record body starts at the IP version nibble and
// any stock tool (tcpdump -r, Wireshark, tools/fbs_dissect.py) reads them
// directly. Timestamps convert the session clock to Unix time via the FBS
// epoch, so records line up with wall-clock tooling.
//
// PcapWriter attaches to any Transport through capture_fn(); PcapReader is
// the bounded parser the dissector's framing assumptions are modeled on --
// it backs the `pcap` fuzz target and the round-trip tests.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"

namespace fbs::net {

constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;
constexpr std::uint16_t kPcapVersionMajor = 2;
constexpr std::uint16_t kPcapVersionMinor = 4;
constexpr std::uint32_t kPcapLinktypeRaw = 101;  // raw IPv4/IPv6
constexpr std::uint32_t kPcapSnapLen = 65535;

class PcapWriter {
 public:
  /// Capture to a file; ok() reports whether the header was written.
  PcapWriter(const std::string& path, const util::Clock& clock);
  /// Capture into a caller-owned buffer (tests, fuzz round-trips).
  PcapWriter(util::Bytes* out, const util::Clock& clock);

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  bool ok() const { return ok_; }
  std::uint64_t frames_written() const { return frames_; }

  /// Append one record stamped with the clock's current time. Frames longer
  /// than the snap length are truncated on disk (orig_len keeps the truth),
  /// exactly like a kernel capture would.
  void record(util::BytesView frame);

  /// Adapter for Transport::set_capture: records every frame crossing the
  /// seam, both directions.
  Transport::CaptureFn capture_fn();

  void flush();

 private:
  void write(const void* data, std::size_t size);
  void write_header();

  const util::Clock& clock_;
  std::ofstream file_;
  util::Bytes* sink_ = nullptr;
  bool ok_ = false;
  std::uint64_t frames_ = 0;
};

/// Bounded pcap parser: one pass, no allocation proportional to claimed
/// (attacker-controlled) lengths -- record bodies are copied only up to the
/// bytes actually present.
class PcapReader {
 public:
  struct Record {
    std::uint32_t ts_sec = 0;
    std::uint32_t ts_usec = 0;
    std::uint32_t orig_len = 0;
    util::Bytes frame;  // incl_len bytes
  };
  struct Capture {
    std::uint32_t linktype = 0;
    std::uint32_t snaplen = 0;
    bool swapped = false;  // file written on the other endianness
    std::vector<Record> records;
  };

  /// nullopt on malformed input: bad magic, truncated header, a record
  /// whose incl_len exceeds the snap length or the bytes remaining.
  static std::optional<Capture> parse(util::BytesView data);
};

}  // namespace fbs::net
