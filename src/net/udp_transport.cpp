#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace fbs::net {
namespace {

// peers_ stores endpoints as (socket IPv4 << 16) | port, both host order.
std::uint64_t pack_endpoint(std::uint32_t ip_host_order, std::uint16_t port) {
  return (static_cast<std::uint64_t>(ip_host_order) << 16) | port;
}

sockaddr_in unpack_endpoint(std::uint64_t packed) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(static_cast<std::uint32_t>(packed >> 16));
  sa.sin_port = htons(static_cast<std::uint16_t>(packed & 0xFFFF));
  return sa;
}

// FBS-layer addresses live in the frame's IPv4 header; offsets per RFC 791.
constexpr std::size_t kIpSrcOffset = 12;
constexpr std::size_t kIpDstOffset = 16;
constexpr std::size_t kIpHeaderMin = 20;

Ipv4Address frame_addr_at(const util::Bytes& frame, std::size_t offset) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v = (v << 8) | frame[offset + i];
  }
  return Ipv4Address{v};
}

}  // namespace

UdpTransport::UdpTransport(const util::Clock& clock, UdpTransportConfig config)
    : clock_(clock), config_(std::move(config)) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_port = htons(config_.bind_port);
  if (::inet_pton(AF_INET, config_.bind_host.c_str(), &bind_addr.sin_addr) !=
      1) {
    error_ = "bad bind_host: " + config_.bind_host;
    ::close(fd_);
    fd_ = -1;
    return;
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&bind_addr),
             sizeof(bind_addr)) != 0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    local_port_ = ntohs(bound.sin_port);
  }
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpTransport::add_peer(Ipv4Address addr, const std::string& host,
                            std::uint16_t port) {
  in_addr ip{};
  if (::inet_pton(AF_INET, host.c_str(), &ip) != 1) return false;
  peers_[addr] = pack_endpoint(ntohl(ip.s_addr), port);
  return true;
}

void UdpTransport::attach(Ipv4Address addr, ReceiveFn receive) {
  sinks_[addr] = std::move(receive);
}

void UdpTransport::detach(Ipv4Address addr) { sinks_.erase(addr); }

void UdpTransport::send(Ipv4Address from, Ipv4Address to, util::Bytes frame) {
  ++counters_.sent;
  capture(from, to, frame, /*outbound=*/true);
  const auto peer = peers_.find(to);
  if (peer == peers_.end()) {
    ++counters_.unknown_peer;
    return;
  }
  if (frame.size() > config_.mtu) {
    ++counters_.oversized;
    return;
  }
  const sockaddr_in dest = unpack_endpoint(peer->second);
  const ssize_t n =
      ::sendto(fd_, frame.data(), frame.size(), 0,
               reinterpret_cast<const sockaddr*>(&dest), sizeof(dest));
  if (n < 0) {
    // EMSGSIZE is the path MTU talking back; fold it into the same bucket
    // as the local clamp so the drop cause reads uniformly.
    ++(errno == EMSGSIZE ? counters_.oversized : counters_.send_failed);
    return;
  }
  ++counters_.tx_wire;
}

void UdpTransport::call_later(util::TimeUs delay, std::function<void()> fn) {
  timers_.push(Timer{clock_.now() + std::max<util::TimeUs>(delay, 0),
                     next_seq_++, std::move(fn)});
}

std::size_t UdpTransport::drain_socket() {
  std::size_t read = 0;
  for (;;) {
    util::Bytes frame(config_.mtu + 1);
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n =
        ::recvfrom(fd_, frame.data(), frame.size(), 0,
                   reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) break;  // EWOULDBLOCK: socket drained
    ++counters_.received;
    ++read;
    frame.resize(static_cast<std::size_t>(n));
    if (frame.size() < kIpHeaderMin) {
      ++counters_.rx_malformed;
      continue;
    }
    if (config_.learn_peers) {
      // The frame's IPv4 source is the peer's FBS-layer identity; the
      // datagram's source sockaddr is where to reach it.
      peers_.emplace(frame_addr_at(frame, kIpSrcOffset),
                     pack_endpoint(ntohl(src.sin_addr.s_addr),
                                   ntohs(src.sin_port)));
    }
    capture(frame_addr_at(frame, kIpSrcOffset),
            frame_addr_at(frame, kIpDstOffset), frame, /*outbound=*/false);
    if (rx_queue_.size() >= config_.recv_queue_frames) {
      ++counters_.rx_queue_full;
      continue;
    }
    rx_queue_.push_back(std::move(frame));
  }
  return read;
}

std::size_t UdpTransport::dispatch_rx() {
  std::size_t handled = 0;
  while (!rx_queue_.empty()) {
    util::Bytes frame = std::move(rx_queue_.front());
    rx_queue_.pop_front();
    const auto sink = sinks_.find(frame_addr_at(frame, kIpDstOffset));
    if (sink == sinks_.end()) {
      ++counters_.no_sink;
      continue;
    }
    ++counters_.delivered;
    ++handled;
    sink->second(std::move(frame));
  }
  return handled;
}

std::size_t UdpTransport::fire_due_timers() {
  std::size_t fired = 0;
  while (!timers_.empty() && timers_.top().deadline <= clock_.now()) {
    // Copy out before pop: the callback may call_later and reshape the heap.
    auto fn = std::move(const_cast<Timer&>(timers_.top()).fn);
    timers_.pop();
    ++fired;
    fn();
  }
  return fired;
}

util::TimeUs UdpTransport::next_timer_delta() const {
  if (timers_.empty()) return -1;
  return std::max<util::TimeUs>(timers_.top().deadline - clock_.now(), 0);
}

std::size_t UdpTransport::poll(util::TimeUs budget) {
  std::size_t handled = 0;
  const util::TimeUs deadline = clock_.now() + budget;
  for (;;) {
    handled += fire_due_timers();
    drain_socket();
    handled += dispatch_rx();

    const util::TimeUs now = clock_.now();
    util::TimeUs wait = deadline - now;
    if (wait <= 0) break;
    const util::TimeUs timer_delta = next_timer_delta();
    if (timer_delta >= 0) wait = std::min(wait, timer_delta);

    pollfd pfd{fd_, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>(std::min<util::TimeUs>((wait + 999) / 1000, 1000));
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno != EINTR) break;
  }
  return handled;
}

Transport::Totals UdpTransport::totals() const {
  Totals t;
  t.sent = counters_.sent;
  t.received = counters_.received;
  t.delivered = counters_.delivered;
  t.tx_wire = counters_.tx_wire;
  t.dropped = counters_.unknown_peer + counters_.oversized +
              counters_.send_failed + counters_.rx_queue_full +
              counters_.rx_malformed + counters_.no_sink;
  t.in_flight = rx_queue_.size();
  return t;
}

void UdpTransport::register_metrics(obs::MetricsRegistry& registry,
                                    const std::string& prefix) const {
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".sent", counters_.sent);
    emit.counter(prefix + ".tx_wire", counters_.tx_wire);
    emit.counter(prefix + ".received", counters_.received);
    emit.counter(prefix + ".delivered", counters_.delivered);
    emit.counter(prefix + ".unknown_peer", counters_.unknown_peer);
    emit.counter(prefix + ".oversized", counters_.oversized);
    emit.counter(prefix + ".send_failed", counters_.send_failed);
    emit.counter(prefix + ".rx_queue_full", counters_.rx_queue_full);
    emit.counter(prefix + ".rx_malformed", counters_.rx_malformed);
    emit.counter(prefix + ".no_sink", counters_.no_sink);
  });
  register_transport_metrics(registry, prefix);
}

}  // namespace fbs::net
