#include "net/ip.hpp"

#include <charconv>

#include "net/checksum.hpp"

namespace fbs::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view dotted) {
  std::uint32_t value = 0;
  int parts = 0;
  const char* p = dotted.data();
  const char* end = p + dotted.size();
  while (parts < 4) {
    unsigned octet = 0;
    const auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc() || octet > 255) return std::nullopt;
    value = value << 8 | octet;
    ++parts;
    p = next;
    if (parts < 4) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Address{value};
}

std::string Ipv4Address::to_string() const {
  std::string out;
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (!out.empty()) out.push_back('.');
    out += std::to_string(value >> shift & 0xFF);
  }
  return out;
}

util::Bytes Ipv4Address::to_bytes() const {
  return {static_cast<std::uint8_t>(value >> 24),
          static_cast<std::uint8_t>(value >> 16),
          static_cast<std::uint8_t>(value >> 8),
          static_cast<std::uint8_t>(value)};
}

util::Bytes Ipv4Header::serialize(util::BytesView payload) const {
  const std::size_t hlen = header_size();
  util::ByteWriter w(hlen + payload.size());
  w.u8(static_cast<std::uint8_t>(0x40 | hlen / 4));  // version 4, IHL
  w.u8(tos);
  w.u16(static_cast<std::uint16_t>(hlen + payload.size()));
  w.u16(id);
  std::uint16_t frag = fragment_offset & 0x1FFF;
  if (dont_fragment) frag |= 0x4000;
  if (more_fragments) frag |= 0x2000;
  w.u16(frag);
  w.u8(ttl);
  w.u8(protocol);
  w.u16(0);  // checksum placeholder
  w.u32(source.value);
  w.u32(destination.value);
  w.bytes(options);
  for (std::size_t i = kSize + options.size(); i < hlen; ++i)
    w.u8(0);  // end-of-option-list padding to the IHL word boundary

  util::Bytes out = w.take();
  const std::uint16_t csum = internet_checksum({out.data(), hlen});
  out[10] = static_cast<std::uint8_t>(csum >> 8);
  out[11] = static_cast<std::uint8_t>(csum);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Ipv4Packet> Ipv4Header::parse(util::BytesView wire) {
  if (wire.size() < kSize) return std::nullopt;
  if ((wire[0] >> 4) != 4) return std::nullopt;
  // The header length is attacker-controlled: it must cover the fixed part
  // and must not run past the buffer, and the checksum covers all of it --
  // an option byte is as protected as any fixed field.
  const std::size_t hlen = static_cast<std::size_t>(wire[0] & 0x0F) * 4;
  if (hlen < kSize || hlen > wire.size()) return std::nullopt;
  if (internet_checksum({wire.data(), hlen}) != 0) return std::nullopt;

  util::ByteReader r(wire);
  Ipv4Packet out;
  (void)r.u8();  // version/ihl (validated above)
  out.header.tos = *r.u8();
  out.header.total_length = *r.u16();
  out.header.id = *r.u16();
  const std::uint16_t frag = *r.u16();
  // RFC 791: the high flag bit is reserved and must be zero; serialize()
  // cannot produce it, so accepting it would break the canonical encoding.
  if (frag & 0x8000) return std::nullopt;
  out.header.dont_fragment = frag & 0x4000;
  out.header.more_fragments = frag & 0x2000;
  out.header.fragment_offset = frag & 0x1FFF;
  out.header.ttl = *r.u8();
  out.header.protocol = *r.u8();
  (void)r.u16();  // checksum (already verified)
  out.header.source.value = *r.u32();
  out.header.destination.value = *r.u32();
  out.header.options.assign(wire.begin() + kSize, wire.begin() + hlen);

  if (out.header.total_length < hlen || out.header.total_length > wire.size())
    return std::nullopt;
  out.payload.assign(wire.begin() + static_cast<std::ptrdiff_t>(hlen),
                     wire.begin() + out.header.total_length);
  return out;
}

}  // namespace fbs::net
