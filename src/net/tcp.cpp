#include "net/tcp.hpp"

#include <algorithm>

namespace fbs::net {

namespace {

/// Wrap-safe sequence comparisons (RFC 793 arithmetic).
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

}  // namespace

TcpConnection::TcpConnection(TcpService& service, Ipv4Address peer,
                             std::uint16_t local_port, std::uint16_t peer_port,
                             std::uint32_t initial_seq)
    : service_(service),
      peer_(peer),
      local_port_(local_port),
      peer_port_(peer_port),
      snd_una_(initial_seq),
      snd_next_(initial_seq) {
  // The tcp_output fix: the segment budget honors IP + security-hook
  // overhead so DF segments never need fragmenting.
  mss_ = service_.stack_.effective_payload_size() - TcpHeader::kSize;
}

void TcpConnection::start_connect() {
  state_ = State::kSynSent;
  emit_segment({}, /*syn=*/true, /*fin=*/false, /*force_ack=*/false);
  snd_next_ = snd_una_ + 1;  // SYN consumes one sequence number
  arm_retransmit_timer();
}

void TcpConnection::start_accept(std::uint32_t peer_isn) {
  state_ = State::kSynReceived;
  rcv_next_ = peer_isn + 1;
  emit_segment({}, /*syn=*/true, /*fin=*/false, /*force_ack=*/true);
  snd_next_ = snd_una_ + 1;
  arm_retransmit_timer();
}

bool TcpConnection::send(util::BytesView data) {
  if (state_ == State::kClosed || state_ == State::kFinWait || fin_pending_)
    return false;
  send_buffer_.insert(send_buffer_.end(), data.begin(), data.end());
  if (state_ == State::kEstablished || state_ == State::kCloseWait)
    pump_output();
  return true;
}

void TcpConnection::close() {
  if (state_ == State::kClosed || fin_pending_) return;
  fin_pending_ = true;
  if (state_ == State::kEstablished || state_ == State::kCloseWait)
    pump_output();
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) return;
  auto self = shared_from_this();  // keep alive across remove()
  become_closed();
}

void TcpConnection::become_closed() {
  state_ = State::kClosed;
  ++timer_epoch_;  // cancel outstanding timers
  send_buffer_.clear();
  in_flight_.clear();
  reorder_.clear();
  if (closed_) closed_();
  service_.remove(*this);
}

void TcpConnection::emit_segment(util::BytesView payload, bool syn, bool fin,
                                 bool force_ack) {
  TcpHeader header;
  header.source_port = local_port_;
  header.destination_port = peer_port_;
  header.syn = syn;
  header.fin = fin;
  // The SYN that opens an active connection is the only un-ACKed segment.
  header.ack_flag = force_ack || !(syn && state_ == State::kSynSent);
  header.ack = header.ack_flag ? rcv_next_ : 0;
  header.seq = syn ? snd_una_ : (fin ? fin_seq_ : snd_next_);
  service_.send_segment(peer_, header, payload);
  ++counters_.segments_sent;
  counters_.bytes_sent += payload.size();
}

void TcpConnection::pump_output() {
  // Segment and transmit what the window allows.
  while (in_flight_.size() < TcpService::kWindowSegments &&
         !send_buffer_.empty()) {
    const std::size_t n = std::min(mss_, send_buffer_.size());
    util::Bytes payload(send_buffer_.begin(),
                        send_buffer_.begin() + static_cast<std::ptrdiff_t>(n));
    send_buffer_.erase(send_buffer_.begin(),
                       send_buffer_.begin() + static_cast<std::ptrdiff_t>(n));
    TcpHeader header;
    header.source_port = local_port_;
    header.destination_port = peer_port_;
    header.ack_flag = true;
    header.ack = rcv_next_;
    header.seq = snd_next_;
    service_.send_segment(peer_, header, payload);
    ++counters_.segments_sent;
    counters_.bytes_sent += payload.size();
    in_flight_[snd_next_] = std::move(payload);
    snd_next_ += static_cast<std::uint32_t>(n);
  }
  if (fin_pending_ && !fin_sent_ && send_buffer_.empty() &&
      in_flight_.size() < TcpService::kWindowSegments) {
    fin_seq_ = snd_next_;
    fin_sent_ = true;
    snd_next_ += 1;  // FIN consumes a sequence number
    emit_segment({}, false, /*fin=*/true, true);
    if (state_ == State::kEstablished) state_ = State::kFinWait;
  }
  if (!in_flight_.empty() || (fin_sent_ && seq_lt(snd_una_, snd_next_)))
    arm_retransmit_timer();
}

void TcpConnection::arm_retransmit_timer() {
  const std::uint64_t epoch = ++timer_epoch_;
  const util::TimeUs rto = TcpService::kRto << std::min(backoff_, 6);
  std::weak_ptr<TcpConnection> weak = weak_from_this();
  service_.network_.call_later(rto, [weak, epoch] {
    if (auto self = weak.lock()) self->on_retransmit_timer(epoch);
  });
}

void TcpConnection::on_retransmit_timer(std::uint64_t epoch) {
  if (epoch != timer_epoch_ || state_ == State::kClosed) return;
  const bool outstanding = !in_flight_.empty() ||
                           (fin_sent_ && seq_lt(snd_una_, snd_next_)) ||
                           state_ == State::kSynSent ||
                           state_ == State::kSynReceived;
  if (!outstanding) return;

  if (++backoff_ > TcpService::kMaxRetries) {
    abort();
    return;
  }
  ++counters_.retransmissions;
  if (state_ == State::kSynSent) {
    emit_segment({}, true, false, false);
  } else if (state_ == State::kSynReceived) {
    emit_segment({}, true, false, true);
  } else if (!in_flight_.empty()) {
    // Go-back to the oldest unacknowledged segment.
    const auto& [seq, payload] = *in_flight_.begin();
    TcpHeader header;
    header.source_port = local_port_;
    header.destination_port = peer_port_;
    header.ack_flag = true;
    header.ack = rcv_next_;
    header.seq = seq;
    service_.send_segment(peer_, header, payload);
    ++counters_.segments_sent;
  } else {
    emit_segment({}, false, true, true);  // retransmit FIN
  }
  arm_retransmit_timer();
}

void TcpConnection::deliver_in_order() {
  auto it = reorder_.begin();
  while (it != reorder_.end() && it->first == rcv_next_) {
    rcv_next_ += static_cast<std::uint32_t>(it->second.size());
    counters_.bytes_delivered += it->second.size();
    if (receive_) receive_(it->second);
    it = reorder_.erase(it);
    it = reorder_.begin();
  }
}

void TcpConnection::on_segment(const TcpHeader& header, util::Bytes payload) {
  ++counters_.segments_received;
  auto self = shared_from_this();  // survive remove() inside

  if (header.rst) {
    become_closed();
    return;
  }

  // Handshake transitions.
  if (state_ == State::kSynSent) {
    if (header.syn && header.ack_flag && header.ack == snd_next_) {
      rcv_next_ = header.seq + 1;
      snd_una_ = header.ack;
      state_ = State::kEstablished;
      backoff_ = 0;
      ++timer_epoch_;
      emit_segment({}, false, false, true);  // complete the handshake
      pump_output();
    }
    return;
  }
  if (state_ == State::kSynReceived) {
    if (header.syn && !header.ack_flag) {
      emit_segment({}, true, false, true);  // peer missed our SYN|ACK
      return;
    }
    if (header.ack_flag && header.ack == snd_next_) {
      snd_una_ = header.ack;
      state_ = State::kEstablished;
      backoff_ = 0;
      ++timer_epoch_;
      if (accept_) {
        auto cb = std::move(accept_);
        accept_ = nullptr;
        cb(self);
      }
      // Fall through: the ACK may carry data.
    } else {
      return;
    }
  }

  // ACK processing.
  if (header.ack_flag && seq_lt(snd_una_, header.ack) &&
      seq_le(header.ack, snd_next_)) {
    snd_una_ = header.ack;
    backoff_ = 0;
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
      if (seq_le(it->first + static_cast<std::uint32_t>(it->second.size()),
                 snd_una_)) {
        it = in_flight_.erase(it);
      } else {
        ++it;
      }
    }
    if (!in_flight_.empty() || (fin_sent_ && seq_lt(snd_una_, snd_next_))) {
      arm_retransmit_timer();
    } else {
      ++timer_epoch_;  // everything acked: cancel the timer
    }
  }

  // Data and FIN processing.
  const std::size_t payload_size = payload.size();
  bool advanced = false;
  if (!payload.empty()) {
    if (header.seq == rcv_next_) {
      rcv_next_ += static_cast<std::uint32_t>(payload.size());
      counters_.bytes_delivered += payload.size();
      if (receive_) receive_(payload);
      deliver_in_order();
      advanced = true;
    } else if (seq_lt(rcv_next_, header.seq)) {
      ++counters_.out_of_order;
      reorder_.emplace(header.seq, std::move(payload));
    } else {
      ++counters_.duplicate_segments;  // retransmission of delivered data
    }
  }
  if (header.fin) {
    // The FIN occupies the sequence number following the segment's data.
    const std::uint32_t fin_seq =
        header.seq + static_cast<std::uint32_t>(payload_size);
    if (fin_seq == rcv_next_) {
      rcv_next_ += 1;
      peer_fin_received_ = true;
      if (state_ == State::kEstablished) state_ = State::kCloseWait;
      advanced = true;
    }
  }
  if (advanced || payload_size > 0 || header.fin)
    emit_segment({}, false, false, true);  // ACK what we have

  // Teardown completion: our FIN acked and peer FIN received.
  const bool our_side_done =
      !fin_sent_ ? false : !seq_lt(snd_una_, snd_next_);
  if (fin_sent_ && our_side_done && peer_fin_received_) {
    become_closed();
    return;
  }

  if (state_ == State::kEstablished || state_ == State::kCloseWait)
    pump_output();
}

TcpService::TcpService(IpStack& stack, Transport& network,
                       util::RandomSource& rng)
    : stack_(stack), network_(network), rng_(rng) {
  next_ephemeral_ = static_cast<std::uint16_t>(32768 + rng_.next_below(16384));
  stack_.register_protocol(
      IpProto::kTcp, [this](const Ipv4Header& ip, util::Bytes payload) {
        on_packet(ip, std::move(payload));
      });
}

void TcpService::listen(std::uint16_t port, AcceptFn on_accept) {
  listeners_[port] = std::move(on_accept);
}

std::uint16_t TcpService::ephemeral_port() {
  if (++next_ephemeral_ < 32768) next_ephemeral_ = 32768;
  return next_ephemeral_;
}

std::shared_ptr<TcpConnection> TcpService::connect(Ipv4Address peer,
                                                   std::uint16_t peer_port) {
  const std::uint16_t local_port = ephemeral_port();
  auto conn = std::shared_ptr<TcpConnection>(new TcpConnection(
      *this, peer, local_port, peer_port, rng_.next_u32()));
  connections_[{peer.value, peer_port, local_port}] = conn;
  conn->start_connect();
  return conn;
}

void TcpService::on_packet(const Ipv4Header& ip, util::Bytes payload) {
  auto parsed = TcpHeader::parse(ip.source, ip.destination, payload);
  if (!parsed) return;
  const TcpHeader& header = parsed->header;

  const ConnKey key{ip.source.value, header.source_port,
                    header.destination_port};
  const auto it = connections_.find(key);
  if (it != connections_.end()) {
    it->second->on_segment(header, std::move(parsed->payload));
    return;
  }

  // Passive open.
  if (header.syn && !header.ack_flag) {
    const auto listener = listeners_.find(header.destination_port);
    if (listener == listeners_.end()) return;
    auto conn = std::shared_ptr<TcpConnection>(
        new TcpConnection(*this, ip.source, header.destination_port,
                          header.source_port, rng_.next_u32()));
    conn->accept_ = listener->second;
    connections_[key] = conn;
    conn->start_accept(header.seq);
  }
}

void TcpService::send_segment(Ipv4Address peer, const TcpHeader& header,
                              util::BytesView payload) {
  const util::Bytes wire =
      header.serialize(stack_.address(), peer, payload);
  // DF always set: segments are sized to never need fragmentation (the
  // tcp_output contract the paper had to patch).
  stack_.output(peer, IpProto::kTcp, wire, /*dont_fragment=*/true);
}

void TcpService::remove(TcpConnection& conn) {
  connections_.erase(
      ConnKey{conn.peer_.value, conn.peer_port_, conn.local_port_});
}

}  // namespace fbs::net
