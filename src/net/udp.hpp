// Minimal UDP service on top of IpStack: port binding and datagram
// send/receive. This is the "client of the datagram service" role in the
// examples and benches (the ttcp-style tools of Section 7.3 ran over
// TCP/UDP; our bulk sender uses this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/headers.hpp"
#include "net/stack.hpp"

namespace fbs::net {

class UdpService {
 public:
  using Handler = std::function<void(Ipv4Address source,
                                     std::uint16_t source_port,
                                     util::Bytes payload)>;

  explicit UdpService(IpStack& stack);

  /// Register a handler for datagrams addressed to `port`.
  void bind(std::uint16_t port, Handler handler);
  void unbind(std::uint16_t port);

  bool send(Ipv4Address destination, std::uint16_t source_port,
            std::uint16_t destination_port, util::BytesView payload,
            bool dont_fragment = false);

  struct Counters {
    std::uint64_t delivered = 0;
    std::uint64_t no_listener = 0;
    std::uint64_t malformed = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  void on_datagram(const Ipv4Header& ip, util::Bytes payload);

  IpStack& stack_;
  std::map<std::uint16_t, Handler> bindings_;
  Counters counters_;
};

}  // namespace fbs::net
