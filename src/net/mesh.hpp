// Multi-hop transit mesh: routed topology over SimNetwork.
//
// The paper's tunnel mode (Section 6, firewall-to-firewall) presumes
// datagrams crossing a routed internet, but SimNetwork alone models a
// fully-connected segment. This module adds the transit fabric:
//
//   TransitRouter -- an IpStack in the gateway role plus one egress queue
//     per neighbor. Frames leave through the stack's transmit seam into a
//     LinkQueue (queue.hpp discipline) drained at the link's serialization
//     rate on the simulation clock; the wire hop itself (propagation delay,
//     loss, corruption) stays SimNetwork's job. FBS endpoints and tunnels
//     run across transit nodes unchanged -- they only ever see IP.
//
//   MeshNetwork -- owns the routers, the topology (edges + host
//     attachments), static shortest-path route computation, the hop-local
//     backpressure wiring (a congested router xoffs its upstream
//     neighbors), and router-granularity faults: link flaps and router
//     crash/restart with soft-state loss (queued frames wiped), extending
//     the PR-1 FaultPlan substrate from endpoints to the transit fabric.
//
// Routing is deliberately static-with-recomputation: a fault or heal
// triggers recompute_routes(), modeling an idealized routing protocol that
// has already converged. The scenarios that need convergence *races*
// (rekey-during-failover) schedule the recompute explicitly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/queue.hpp"
#include "net/simnet.hpp"
#include "net/stack.hpp"
#include "obs/metrics.hpp"

namespace fbs::net {

struct TransitLinkConfig {
  /// Egress serialization rate; 0 = infinite (queue drains instantly).
  double bandwidth_bps = 10e6;
  QueueParams queue;
  /// Wire characteristics of the hop (propagation delay, loss, ...);
  /// applied by SimNetwork between the two attached addresses. Leave
  /// bandwidth_bps zero here -- serialization is the queue's job.
  LinkParams wire;
  /// Backpressure watchdog: a paused link self-resumes after this long, so
  /// a pause cascade (or a crashed downstream router that never sends xon)
  /// cannot deadlock the mesh.
  util::TimeUs pause_timeout = util::TimeUs{50'000};
};

class TransitRouter {
 public:
  /// Raised/cleared when this router's backpressure queues cross their
  /// watermarks; the mesh wires it to pause/resume upstream neighbors.
  using CongestionSignal = std::function<void(Ipv4Address reporter, bool on)>;

  TransitRouter(Transport& net, const util::Clock& clock, Ipv4Address addr,
                util::RandomSource& rng, std::size_t mtu = 1500);

  /// Declare `neighbor` reachable through an egress queue + serializer.
  void add_link(Ipv4Address neighbor, const TransitLinkConfig& config);

  Ipv4Address address() const { return stack_.address(); }
  IpStack& stack() { return stack_; }

  // --- Faults (soft state only: queues; the stack's routes survive) ---

  /// Down the router: every queued frame is wiped (counted), frames in
  /// serialization are lost, and traffic offered while down is dropped.
  void crash();
  void restart();
  bool down() const { return down_; }

  // --- Hop-local backpressure (xoff/xon between adjacent routers) ---

  void set_congestion_signal(CongestionSignal signal) {
    congestion_ = std::move(signal);
  }
  /// Stop/resume draining the egress queue toward `neighbor` (the xoff a
  /// congested downstream router sends us). Pausing never drops; the queue
  /// absorbs until its own discipline rejects.
  void pause_link(Ipv4Address neighbor);
  void resume_link(Ipv4Address neighbor);

  struct LinkStats {
    LinkQueue::Stats queue;
    std::uint64_t sent = 0;             // handed to the wire
    std::uint64_t crash_tx_dropped = 0; // serialization cut by a crash
    std::uint64_t pauses = 0;           // xoff windows entered
    std::size_t depth = 0;
    bool paused = false;
  };
  /// Router-level drops happening before any queue is chosen.
  struct Stats {
    std::uint64_t no_route_dropped = 0;  // next hop is not a neighbor
    std::uint64_t down_dropped = 0;      // offered while crashed
    std::uint64_t crashes = 0;
  };

  std::vector<Ipv4Address> neighbors() const;
  /// nullptr when no link to `neighbor` exists.
  const LinkStats* link_stats(Ipv4Address neighbor) const;
  const Stats& stats() const { return stats_; }
  const LinkQueue* link_queue(Ipv4Address neighbor) const;

  /// Per-link depth/drop/latency metrics under
  /// `<prefix>.link.<neighbor>.`, plus the router-level counters.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

 private:
  struct Link {
    Ipv4Address neighbor;
    TransitLinkConfig cfg;
    LinkQueue queue;
    obs::LatencyRecorder queue_delay;  // enqueue -> serialization start
    bool busy = false;        // a frame is on the serializer
    bool paused = false;      // xoff from downstream
    bool xoff_raised = false; // we are the congested party
    std::uint64_t pause_epoch = 0;  // invalidates stale watchdogs
    std::uint64_t sent = 0;
    std::uint64_t crash_tx_dropped = 0;
    std::uint64_t pauses = 0;

    Link(Ipv4Address n, const TransitLinkConfig& c, util::RandomSource& rng)
        : neighbor(n), cfg(c), queue(c.queue, rng) {}
  };

  void transmit(Ipv4Address next_hop, util::Bytes frame);
  void start_tx(Link& link);
  void update_congestion(Link& link);

  Transport& net_;
  const util::Clock& clock_;
  IpStack stack_;
  util::RandomSource& rng_;
  std::map<Ipv4Address, std::unique_ptr<Link>> links_;
  Stats stats_;
  CongestionSignal congestion_;
  std::size_t congested_links_ = 0;
  bool down_ = false;
};

/// The routed fabric: routers, edges, host attachments, static routes, and
/// router-granularity fault scheduling.
class MeshNetwork {
 public:
  /// The mesh is transport-generic for forwarding and timers; the
  /// wire-fault APIs (per-hop LinkParams, partitions) exist only on the
  /// sim backend and are reached through a dynamic_cast -- on any other
  /// Transport they are documented no-ops (the real wire supplies its own
  /// faults).
  MeshNetwork(Transport& net, const util::Clock& clock,
              util::RandomSource& rng)
      : net_(net),
        sim_(dynamic_cast<SimNetwork*>(&net)),
        clock_(clock),
        rng_(rng) {}

  TransitRouter& add_router(Ipv4Address addr);
  /// Bidirectional router<->router adjacency (one egress queue each way).
  void connect(Ipv4Address a, Ipv4Address b, const TransitLinkConfig& config);
  /// Attach an edge host (plain IpStack, FBS endpoint, security gateway)
  /// behind `router`: the router gets an access-link egress queue toward
  /// the host and routes to it; the host should default-route to `router`.
  void attach_host(Ipv4Address host, Ipv4Address router,
                   const TransitLinkConfig& config = {});

  /// Recompute every router's table: BFS shortest paths over up
  /// routers/links, /32 routes to every router and host. Destinations
  /// currently unreachable get no route, and the routers drop for them
  /// (counted in TransitRouter::Stats::no_route_dropped).
  void recompute_routes();

  // --- Router-granularity fault plan ---

  /// Sever a<->b for [from, until): wire frames drop (SimNetwork
  /// partition), the edge leaves the routing graph at `from` and rejoins at
  /// `until`, with routes recomputed at both transitions.
  void flap_link(Ipv4Address a, Ipv4Address b, util::TimeUs from,
                 util::TimeUs until);
  /// Crash `router` at `at`, restart at `until` (queued frames wiped, wire
  /// frames dropped while down, routes recomputed at both transitions).
  void crash_router(Ipv4Address router, util::TimeUs at, util::TimeUs until);

  TransitRouter& router(Ipv4Address addr) { return *routers_.at(addr); }
  const std::vector<Ipv4Address>& router_order() const { return order_; }
  std::size_t router_count() const { return routers_.size(); }

  struct Edge {
    Ipv4Address a, b;
    bool down = false;
  };
  const std::vector<Edge>& edges() const { return edges_; }

  /// Mesh-wide queue accounting, summed over every router and link; the
  /// chaos scenarios assert conservation over these.
  struct Totals {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t tail_dropped = 0;
    std::uint64_t red_dropped = 0;
    std::uint64_t wiped = 0;
    std::uint64_t sent = 0;
    std::uint64_t crash_tx_dropped = 0;
    std::uint64_t no_route_dropped = 0;
    std::uint64_t down_dropped = 0;
    std::uint64_t depth = 0;  // frames still queued
  };
  Totals totals() const;

  /// Registers every router as `<prefix>.r<N>` (N = creation order).
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

 private:
  void set_edge_state(Ipv4Address a, Ipv4Address b, bool down);
  void schedule(util::TimeUs at, std::function<void()> fn);

  Transport& net_;
  SimNetwork* sim_;  // non-null only on the sim backend (wire faults)
  const util::Clock& clock_;
  util::RandomSource& rng_;
  std::map<Ipv4Address, std::unique_ptr<TransitRouter>> routers_;
  std::vector<Ipv4Address> order_;
  std::vector<Edge> edges_;
  std::map<Ipv4Address, Ipv4Address> hosts_;  // host -> access router
};

/// Topology builders; all return the router addresses in creation order.
/// Addresses are drawn from 10.200.0.0/24 (router i = 10.200.0.(i+1)).
Ipv4Address mesh_router_address(std::size_t index);
std::vector<Ipv4Address> build_line(MeshNetwork& mesh, std::size_t n,
                                    const TransitLinkConfig& config);
/// r0 - {r1, r2} - r3, the classic two-disjoint-paths failover shape.
std::vector<Ipv4Address> build_diamond(MeshNetwork& mesh,
                                       const TransitLinkConfig& config);
/// Connected random mesh: a ring (guarantees connectivity) plus
/// `extra_edges` distinct random chords, deterministic in `seed`.
std::vector<Ipv4Address> build_random_mesh(MeshNetwork& mesh, std::size_t n,
                                           std::size_t extra_edges,
                                           std::uint64_t seed,
                                           const TransitLinkConfig& config);

}  // namespace fbs::net
