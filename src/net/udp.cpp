#include "net/udp.hpp"

namespace fbs::net {

UdpService::UdpService(IpStack& stack) : stack_(stack) {
  stack_.register_protocol(
      IpProto::kUdp, [this](const Ipv4Header& ip, util::Bytes payload) {
        on_datagram(ip, std::move(payload));
      });
}

void UdpService::bind(std::uint16_t port, Handler handler) {
  bindings_[port] = std::move(handler);
}

void UdpService::unbind(std::uint16_t port) { bindings_.erase(port); }

bool UdpService::send(Ipv4Address destination, std::uint16_t source_port,
                      std::uint16_t destination_port, util::BytesView payload,
                      bool dont_fragment) {
  // A payload the 16-bit UDP length cannot express would serialize with a
  // wrapped length field and a checksum no receiver can verify.
  if (payload.size() > 0xFFFF - UdpHeader::kSize) return false;
  UdpHeader header;
  header.source_port = source_port;
  header.destination_port = destination_port;
  const util::Bytes wire =
      header.serialize(stack_.address(), destination, payload);
  return stack_.output(destination, IpProto::kUdp, wire, dont_fragment);
}

void UdpService::on_datagram(const Ipv4Header& ip, util::Bytes payload) {
  auto parsed = UdpHeader::parse(ip.source, ip.destination, payload);
  if (!parsed) {
    ++counters_.malformed;
    return;
  }
  const auto it = bindings_.find(parsed->header.destination_port);
  if (it == bindings_.end()) {
    ++counters_.no_listener;
    return;
  }
  ++counters_.delivered;
  it->second(ip.source, parsed->header.source_port,
             std::move(parsed->payload));
}

}  // namespace fbs::net
