// IPv4 header codec (RFC 791). This is the datagram substrate the paper's
// Section 7 mapping targets; the FBS header is inserted between this header
// and the transport payload ("a short-cut form of IP encapsulation").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace fbs::net {

/// IPv4 address in host byte order with dotted-quad helpers.
struct Ipv4Address {
  std::uint32_t value = 0;

  static std::optional<Ipv4Address> parse(std::string_view dotted);
  std::string to_string() const;
  util::Bytes to_bytes() const;

  auto operator<=>(const Ipv4Address&) const = default;
};

/// Protocol numbers used in this library.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  /// FBS gateway-to-gateway encapsulation (from the experimental range).
  kFbsTunnel = 253,
};

struct Ipv4Packet;  // defined after Ipv4Header

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;          // option-free header
  static constexpr std::size_t kMaxOptionsSize = 40;  // IHL caps at 15 words

  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  // header + payload, filled by serialize
  std::uint16_t id = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t fragment_offset = 0;  // in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  Ipv4Address source;
  Ipv4Address destination;
  /// IP options, verbatim. serialize() zero-pads to a 4-byte boundary (EOL)
  /// and refuses nothing: callers must keep it within kMaxOptionsSize.
  util::Bytes options;

  /// Wire size of the header including options (padded), i.e. IHL * 4.
  std::size_t header_size() const {
    return kSize + (options.size() + 3) / 4 * 4;
  }

  /// Serialize header (with options) followed by payload; computes
  /// total_length and the header checksum over the full header.
  util::Bytes serialize(util::BytesView payload) const;

  /// Parse and checksum-verify a wire packet. nullopt on truncation, bad
  /// version, IHL < 5 or extending past the buffer, a checksum mismatch
  /// (computed over the full IHL * 4 header, options included), or a
  /// total_length shorter than the header / longer than the wire buffer.
  /// Decoded lengths are never trusted beyond what the buffer holds.
  static std::optional<Ipv4Packet> parse(util::BytesView wire);
};

/// A parsed (header, payload) pair.
struct Ipv4Packet {
  Ipv4Header header;
  util::Bytes payload;
};

}  // namespace fbs::net
