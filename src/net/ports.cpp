#include "net/ports.hpp"

namespace fbs::net {

bool PortAllocator::cooling_down(std::uint16_t port) const {
  const auto it = released_.find(port);
  return it != released_.end() &&
         clock_.now() - it->second < cooldown_;
}

std::size_t PortAllocator::cooling_count() const {
  std::size_t n = 0;
  for (const auto& [port, when] : released_)
    if (clock_.now() - when < cooldown_) ++n;
  return n;
}

bool PortAllocator::acquire(std::uint16_t port) {
  if (port < first_ || port > last_) return false;
  if (used_.contains(port)) return false;
  if (cooling_down(port)) return false;
  released_.erase(port);
  used_.insert(port);
  return true;
}

std::optional<std::uint16_t> PortAllocator::acquire_any() {
  const std::uint32_t span =
      static_cast<std::uint32_t>(last_) - first_ + 1;
  for (std::uint32_t tried = 0; tried < span; ++tried) {
    const std::uint16_t candidate = next_;
    next_ = (next_ == last_) ? first_ : static_cast<std::uint16_t>(next_ + 1);
    if (acquire(candidate)) return candidate;
  }
  return std::nullopt;
}

void PortAllocator::release(std::uint16_t port) {
  if (used_.erase(port)) released_[port] = clock_.now();
}

}  // namespace fbs::net
