#include "net/queue.hpp"

#include <algorithm>

namespace fbs::net {

const char* to_string(QueueDiscipline d) {
  switch (d) {
    case QueueDiscipline::kFifoTailDrop: return "fifo";
    case QueueDiscipline::kRed: return "red";
    case QueueDiscipline::kBackpressure: return "backpressure";
  }
  return "?";
}

LinkQueue::LinkQueue(const QueueParams& params, util::RandomSource& rng)
    : params_(params), rng_(rng) {
  if (params_.capacity == 0) params_.capacity = 1;
  red_min_ = params_.red_min_threshold ? params_.red_min_threshold
                                       : std::max<std::size_t>(1, params_.capacity / 4);
  red_max_ = params_.red_max_threshold ? params_.red_max_threshold
                                       : std::max(red_min_ + 1, params_.capacity * 3 / 4);
  high_ = params_.high_watermark ? params_.high_watermark
                                 : std::max<std::size_t>(1, params_.capacity * 3 / 4);
  low_ = params_.low_watermark ? params_.low_watermark
                               : params_.capacity / 4;
}

LinkQueue::Enqueue LinkQueue::push(util::Bytes frame, util::TimeUs now) {
  if (params_.discipline == QueueDiscipline::kRed) {
    // EWMA of the instantaneous depth, sampled at every arrival (the
    // classic per-packet update; idle decay is immaterial at the
    // simulator's traffic granularity).
    red_avg_ = (1.0 - params_.red_weight) * red_avg_ +
               params_.red_weight * static_cast<double>(q_.size());
    if (red_avg_ >= static_cast<double>(red_max_)) {
      ++stats_.red_dropped;
      red_count_ = 0;
      return Enqueue::kRedDrop;
    }
    if (red_avg_ >= static_cast<double>(red_min_)) {
      const double pb = params_.red_max_p *
                        (red_avg_ - static_cast<double>(red_min_)) /
                        static_cast<double>(red_max_ - red_min_);
      // Floyd & Jacobson's count term: the effective probability grows with
      // the accepted run length, spacing drops ~uniformly instead of in
      // bursts.
      const double denom = 1.0 - static_cast<double>(red_count_) * pb;
      const double pa = denom > 0 ? std::min(1.0, pb / denom) : 1.0;
      if (rng_.next_double() < pa) {
        ++stats_.red_dropped;
        red_count_ = 0;
        return Enqueue::kRedDrop;
      }
      ++red_count_;
    } else {
      red_count_ = 0;
    }
  }
  if (q_.size() >= params_.capacity) {
    ++stats_.tail_dropped;
    return Enqueue::kTailDrop;
  }
  q_.push_back(Queued{std::move(frame), now});
  ++stats_.enqueued;
  stats_.highwater = std::max(stats_.highwater, q_.size());
  return Enqueue::kAccepted;
}

std::optional<LinkQueue::Queued> LinkQueue::pop() {
  if (q_.empty()) return std::nullopt;
  Queued out = std::move(q_.front());
  q_.pop_front();
  ++stats_.dequeued;
  return out;
}

std::size_t LinkQueue::wipe() {
  const std::size_t n = q_.size();
  q_.clear();
  stats_.wiped += n;
  // The queue is empty now; let the average follow so a restarted router
  // does not inherit phantom congestion.
  red_avg_ = 0.0;
  red_count_ = 0;
  return n;
}

}  // namespace fbs::net
