// Directory service for public-value certificates.
//
// Models the network-resident certificate authority / secure-DNS lookup of
// Section 5.3: a PVC miss "incurs at the minimum a round trip communication
// delay" and the fetch travels over the *secure flow bypass* (it must not
// itself be secured, or fetching would recurse). The simulated round trip is
// charged to a VirtualClock when one is attached, so trace-driven
// experiments see realistic stalls on cold PVC misses.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "cert/certificate.hpp"
#include "util/clock.hpp"

namespace fbs::cert {

class DirectoryService {
 public:
  /// `rtt` is charged per fetch; `clock` (optional) is advanced by it to
  /// simulate the blocking round trip.
  explicit DirectoryService(util::TimeUs rtt = util::seconds(0),
                            util::VirtualClock* clock = nullptr)
      : rtt_(rtt), clock_(clock) {}

  /// Register/replace the certificate for a subject.
  void publish(const PublicValueCertificate& cert);
  void revoke(util::BytesView subject);

  /// Unauthenticated fetch over the secure-flow bypass. The caller verifies
  /// the returned certificate against the CA ("it need not be secure because
  /// the certificates are to be verified on receipt").
  std::optional<PublicValueCertificate> fetch(util::BytesView subject);

  std::uint64_t fetch_count() const { return fetch_count_; }
  util::TimeUs total_fetch_delay() const { return fetch_count_ * rtt_; }

 private:
  util::TimeUs rtt_;
  util::VirtualClock* clock_;
  std::map<util::Bytes, PublicValueCertificate> certs_;
  std::uint64_t fetch_count_ = 0;
};

}  // namespace fbs::cert
