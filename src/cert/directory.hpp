// Directory service for public-value certificates.
//
// Models the network-resident certificate authority / secure-DNS lookup of
// Section 5.3: a PVC miss "incurs at the minimum a round trip communication
// delay" and the fetch travels over the *secure flow bypass* (it must not
// itself be secured, or fetching would recurse). The simulated round trip is
// charged to a VirtualClock when one is attached, so trace-driven
// experiments see realistic stalls on cold PVC misses.
//
// Because the real directory sits across an unreliable network, fetches can
// fail transiently or slow down. A pluggable FaultPlan injects seeded
// failure/latency faults, and scheduled outage windows model a directory
// that is down for a stretch of virtual time -- the environment the MKD's
// retry/backoff (fbs/keying) is built to survive. A transient failure
// (kUnavailable) is distinct from an authoritative kNotFound: only the
// former is worth retrying.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "cert/certificate.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::cert {

enum class FetchStatus : std::uint8_t {
  kOk,           // certificate returned
  kNotFound,     // directory answered: no such subject
  kUnavailable,  // transient failure (timeout, outage); retry may succeed
};

struct FetchResult {
  FetchStatus status = FetchStatus::kNotFound;
  std::optional<PublicValueCertificate> cert;

  bool ok() const { return status == FetchStatus::kOk; }
  bool transient() const { return status == FetchStatus::kUnavailable; }
  bool has_value() const { return cert.has_value(); }
  explicit operator bool() const { return ok(); }
  const PublicValueCertificate& operator*() const { return *cert; }
  const PublicValueCertificate* operator->() const { return &*cert; }
};

/// The keying-plane messages of the secure-flow bypass (Section 5.3): an
/// MKD's certificate fetch and the directory's reply travel *unprotected*
/// ("it need not be secure because the certificates are to be verified on
/// receipt"), so these decoders face raw attacker bytes. Both encodings are
/// canonical: parse() rejects trailing bytes and out-of-domain tags, and
/// serialize()/parse() round-trip byte-identically.
struct DirectoryRequest {
  static constexpr std::uint8_t kWireKind = 0x01;

  util::Bytes subject;

  util::Bytes serialize() const;
  static std::optional<DirectoryRequest> parse(
      util::BytesView wire, WireDecodeError* error = nullptr);
};

struct DirectoryResponse {
  static constexpr std::uint8_t kWireKind = 0x02;

  FetchStatus status = FetchStatus::kNotFound;
  std::optional<PublicValueCertificate> cert;  // present iff status == kOk

  util::Bytes serialize() const;
  static std::optional<DirectoryResponse> parse(
      util::BytesView wire, WireDecodeError* error = nullptr);
};

/// Seeded fault model for fetches. All draws come from the plan's own RNG so
/// a given (plan, call sequence) misbehaves identically across runs.
struct FaultPlan {
  double fail_probability = 0.0;  // P(transient failure) per fetch
  std::uint32_t fail_burst = 1;   // consecutive failures once one triggers
  double slow_probability = 0.0;  // P(extra latency) per fetch
  util::TimeUs extra_latency = 0; // added to the RTT when a slow draw hits
  std::uint64_t seed = 1;
};

class DirectoryService {
 public:
  /// `rtt` is charged per fetch; `clock` (optional) is advanced by it to
  /// simulate the blocking round trip.
  explicit DirectoryService(util::TimeUs rtt = util::seconds(0),
                            util::VirtualClock* clock = nullptr)
      : rtt_(rtt), clock_(clock) {}

  /// Register/replace the certificate for a subject.
  void publish(const PublicValueCertificate& cert);
  void revoke(util::BytesView subject);

  /// Unauthenticated fetch over the secure-flow bypass. The caller verifies
  /// the returned certificate against the CA ("it need not be secure because
  /// the certificates are to be verified on receipt"). Failed fetches still
  /// pay the round trip (the timeout is at least as long as the RTT).
  FetchResult fetch(util::BytesView subject);

  /// Wire entry points for the bypass protocol. serve_wire decodes a fetch
  /// request and answers it; publish_wire ingests a serialized certificate
  /// (e.g. a CA pushing a renewal). Malformed input is rejected -- nullopt /
  /// false -- and counted per WireDecodeError kind for the metrics layer.
  std::optional<DirectoryResponse> serve_wire(util::BytesView request_wire);
  bool publish_wire(util::BytesView cert_wire);

  /// Install/remove the probabilistic fault model.
  void set_fault_plan(const FaultPlan& plan);
  void clear_fault_plan() { plan_.reset(); }

  /// Hard outage: every fetch with clock time in [from, until) fails with
  /// kUnavailable. Requires an attached clock; windows are pruned lazily.
  void add_outage(util::TimeUs from, util::TimeUs until);
  void clear_outages() { outages_.clear(); }

  std::uint64_t fetch_count() const { return fetch_count_; }
  std::uint64_t decode_rejects(WireDecodeError e) const {
    return decode_rejects_[static_cast<std::size_t>(e)];
  }
  std::uint64_t failed_fetches() const { return failed_fetches_; }
  std::uint64_t slow_fetches() const { return slow_fetches_; }
  util::TimeUs total_fetch_delay() const { return total_fetch_delay_; }

  /// Publish the fetch/outage counters as a pull source under `<prefix>.`
  /// names (e.g. `dir.fetches`, `dir.failed`).
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

 private:
  struct Outage {
    util::TimeUs from;
    util::TimeUs until;
  };

  bool fault_now();

  util::TimeUs rtt_;
  util::VirtualClock* clock_;
  std::map<util::Bytes, PublicValueCertificate> certs_;
  std::optional<FaultPlan> plan_;
  util::SplitMix64 fault_rng_{1};
  std::uint32_t burst_remaining_ = 0;
  std::vector<Outage> outages_;
  std::uint64_t fetch_count_ = 0;
  std::uint64_t failed_fetches_ = 0;
  std::uint64_t slow_fetches_ = 0;
  util::TimeUs total_fetch_delay_ = 0;
  std::array<std::uint64_t, kWireDecodeErrorKinds> decode_rejects_{};
};

}  // namespace fbs::cert
