#include "cert/certificate.hpp"

namespace fbs::cert {

const char* to_string(WireDecodeError e) {
  switch (e) {
    case WireDecodeError::kTruncated: return "truncated";
    case WireDecodeError::kOversizedField: return "oversized-field";
    case WireDecodeError::kTrailingBytes: return "trailing-bytes";
    case WireDecodeError::kBadValue: return "bad-value";
  }
  return "?";
}

namespace {

void set_error(WireDecodeError* error, WireDecodeError e) {
  if (error) *error = e;
}

/// Read a u32-length-prefixed field, enforcing the per-field cap before the
/// (already bounds-checked) copy.
std::optional<util::Bytes> read_field(util::ByteReader& r,
                                      WireDecodeError* error) {
  const auto len = r.u32();
  if (!len) {
    set_error(error, WireDecodeError::kTruncated);
    return std::nullopt;
  }
  if (*len > PublicValueCertificate::kMaxFieldSize) {
    set_error(error, WireDecodeError::kOversizedField);
    return std::nullopt;
  }
  auto bytes = r.bytes(*len);
  if (!bytes) set_error(error, WireDecodeError::kTruncated);
  return bytes;
}

}  // namespace

util::Bytes PublicValueCertificate::tbs_bytes() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(subject.size()));
  w.bytes(subject);
  w.u32(static_cast<std::uint32_t>(group_name.size()));
  w.bytes(util::to_bytes(group_name));
  w.u32(static_cast<std::uint32_t>(public_value.size()));
  w.bytes(public_value);
  w.u64(static_cast<std::uint64_t>(not_before));
  w.u64(static_cast<std::uint64_t>(not_after));
  w.u64(serial);
  return w.take();
}

util::Bytes PublicValueCertificate::serialize() const {
  util::ByteWriter w;
  w.bytes(tbs_bytes());
  w.u32(static_cast<std::uint32_t>(signature.size()));
  w.bytes(signature);
  return w.take();
}

std::optional<PublicValueCertificate> PublicValueCertificate::parse(
    util::BytesView wire, WireDecodeError* error) {
  util::ByteReader r(wire);
  PublicValueCertificate cert;

  const auto subject = read_field(r, error);
  if (!subject) return std::nullopt;
  cert.subject = *subject;
  const auto group = read_field(r, error);
  if (!group) return std::nullopt;
  cert.group_name = util::to_string(*group);
  const auto public_value = read_field(r, error);
  if (!public_value) return std::nullopt;
  cert.public_value = *public_value;

  const auto not_before = r.u64();
  const auto not_after = r.u64();
  const auto serial = r.u64();
  if (!not_before || !not_after || !serial) {
    set_error(error, WireDecodeError::kTruncated);
    return std::nullopt;
  }
  cert.not_before = static_cast<util::TimeUs>(*not_before);
  cert.not_after = static_cast<util::TimeUs>(*not_after);
  cert.serial = *serial;

  const auto signature = read_field(r, error);
  if (!signature) return std::nullopt;
  cert.signature = *signature;

  if (r.remaining() != 0) {
    set_error(error, WireDecodeError::kTrailingBytes);
    return std::nullopt;
  }
  return cert;
}

CertificateAuthority::CertificateAuthority(std::size_t rsa_bits,
                                           util::RandomSource& rng)
    : key_(crypto::rsa_generate(rsa_bits, rng)) {}

PublicValueCertificate CertificateAuthority::issue(
    util::BytesView subject, const std::string& group_name,
    util::BytesView public_value, util::TimeUs not_before,
    util::TimeUs not_after) {
  PublicValueCertificate cert;
  cert.subject.assign(subject.begin(), subject.end());
  cert.group_name = group_name;
  cert.public_value.assign(public_value.begin(), public_value.end());
  cert.not_before = not_before;
  cert.not_after = not_after;
  cert.serial = next_serial_++;
  cert.signature = crypto::rsa_sign_md5(key_, cert.tbs_bytes());
  return cert;
}

namespace {

CertStatus verify_with(const crypto::RsaPublicKey& key,
                       const PublicValueCertificate& cert, util::TimeUs now) {
  if (!crypto::rsa_verify_md5(key, cert.tbs_bytes(), cert.signature))
    return CertStatus::kBadSignature;
  if (now < cert.not_before) return CertStatus::kNotYetValid;
  if (now > cert.not_after) return CertStatus::kExpired;
  return CertStatus::kValid;
}

util::Bytes serialize_rsa_public(const crypto::RsaPublicKey& key) {
  util::ByteWriter w;
  const util::Bytes n = key.n.to_bytes_be();
  const util::Bytes e = key.e.to_bytes_be();
  w.u16(static_cast<std::uint16_t>(n.size()));
  w.bytes(n);
  w.u16(static_cast<std::uint16_t>(e.size()));
  w.bytes(e);
  return w.take();
}

std::optional<crypto::RsaPublicKey> parse_rsa_public(util::BytesView wire) {
  util::ByteReader r(wire);
  const auto n_len = r.u16();
  if (!n_len) return std::nullopt;
  const auto n = r.bytes(*n_len);
  const auto e_len = r.u16();
  if (!n || !e_len) return std::nullopt;
  const auto e = r.bytes(*e_len);
  if (!e) return std::nullopt;
  // A delegation's public_value is attacker-suppliable wire; the encoding
  // is canonical, so trailing bytes mean forgery or corruption.
  if (r.remaining() != 0) return std::nullopt;
  return crypto::RsaPublicKey{bignum::Uint::from_bytes_be(*n),
                              bignum::Uint::from_bytes_be(*e)};
}

}  // namespace

CertStatus CertificateAuthority::verify(const PublicValueCertificate& cert,
                                        util::TimeUs now) const {
  return verify_with(key_.pub, cert, now);
}

util::Bytes CertificateAuthority::public_key_bytes() const {
  return serialize_rsa_public(key_.pub);
}

PublicValueCertificate CertificateAuthority::delegate(
    const CertificateAuthority& child, util::BytesView child_name,
    util::TimeUs not_before, util::TimeUs not_after) {
  // A delegation is an ordinary certificate whose public_value carries the
  // child CA's RSA key (group_name marks the kind).
  return issue(child_name, "rsa-ca-delegation", child.public_key_bytes(),
               not_before, not_after);
}

CertStatus verify_chain(const crypto::RsaPublicKey& root,
                        const CertificateChain& chain, util::TimeUs now) {
  crypto::RsaPublicKey current = root;
  // Walk from the root-signed delegation inward to the leaf's issuer.
  for (auto it = chain.delegations.rbegin(); it != chain.delegations.rend();
       ++it) {
    const CertStatus status = verify_with(current, *it, now);
    if (status != CertStatus::kValid) return status;
    const auto next = parse_rsa_public(it->public_value);
    if (!next) return CertStatus::kBadSignature;
    current = *next;
  }
  return verify_with(current, chain.leaf, now);
}

}  // namespace fbs::cert
