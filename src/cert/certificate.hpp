// Public-value certificates.
//
// Section 5.2: "the public values are made available and authenticated via a
// distributed certification hierarchy (e.g., X.509 certificates) or a secure
// DNS service". This is our stand-in for that hierarchy: a certificate binds
// a principal address to its Diffie-Hellman public value, signed by a
// certificate authority with RSA over MD5. The PVC (public values cache,
// Section 5.3) caches these certificates -- not bare public values --
// because "a certificate can be verified each time it is used".
#pragma once

#include <cstdint>
#include <string>

#include "bignum/uint.hpp"
#include "crypto/rsa.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::cert {

/// Why a wire decode of a certificate or directory message was rejected.
/// Counted per kind by DirectoryService (the decoders sit on the insecure
/// bypass, so every rejection is a potential attack worth observing).
enum class WireDecodeError : std::uint8_t {
  kTruncated,       // a field (or its length prefix) ran past the buffer
  kOversizedField,  // a length field exceeded the per-field hard cap
  kTrailingBytes,   // decode succeeded but bytes remained (non-canonical)
  kBadValue,        // a tag/status/kind byte outside its domain
};
inline constexpr std::size_t kWireDecodeErrorKinds = 4;
const char* to_string(WireDecodeError e);

struct PublicValueCertificate {
  /// Hard cap on each variable-length field in the wire encoding. A forged
  /// length cannot make the decoder read past the buffer (ByteReader is
  /// bounds-checked) but without a cap it could still demand absurd copies.
  static constexpr std::size_t kMaxFieldSize = 1 << 16;

  util::Bytes subject;        // principal address (opaque to this layer)
  std::string group_name;     // DH group the public value belongs to
  util::Bytes public_value;   // big-endian g^x mod p
  util::TimeUs not_before = 0;
  util::TimeUs not_after = 0;
  std::uint64_t serial = 0;
  util::Bytes signature;      // RSA-MD5 over tbs_bytes()

  /// Canonical "to-be-signed" encoding (everything but the signature).
  util::Bytes tbs_bytes() const;

  /// Full wire encoding: tbs_bytes() followed by the length-prefixed
  /// signature. parse() is its exact inverse (byte-identical round trip),
  /// so the signature of a re-encoded certificate still verifies.
  util::Bytes serialize() const;

  /// Bounds-checked decode. Every length field is validated against both
  /// the remaining buffer and kMaxFieldSize, and trailing bytes are
  /// rejected (the encoding is canonical). On failure `error`, when given,
  /// receives the reason.
  static std::optional<PublicValueCertificate> parse(
      util::BytesView wire, WireDecodeError* error = nullptr);
};

/// Why verification rejected a certificate (useful for audit counters).
enum class CertStatus {
  kValid,
  kBadSignature,
  kNotYetValid,
  kExpired,
};

/// How a received certificate is judged trustworthy. The master key daemon
/// depends on this interface only, so deployments can trust a single CA
/// directly or require a delegation chain back to a root.
class Verifier {
 public:
  virtual ~Verifier() = default;
  virtual CertStatus verify(const PublicValueCertificate& cert,
                            util::TimeUs now) const = 0;
};

/// A certificate authority in the hierarchy. Holds an RSA keypair; issues
/// and verifies public-value certificates. The root is self-standing;
/// subordinate CAs carry a cross-certificate from their parent (see
/// delegate() / CertificateChain), realizing the paper's "distributed
/// certification hierarchy".
class CertificateAuthority : public Verifier {
 public:
  /// Generate a fresh CA key (512..1024-bit modulus; keygen cost is
  /// noticeable, so tests share a fixture CA).
  CertificateAuthority(std::size_t rsa_bits, util::RandomSource& rng);

  PublicValueCertificate issue(util::BytesView subject,
                               const std::string& group_name,
                               util::BytesView public_value,
                               util::TimeUs not_before,
                               util::TimeUs not_after);

  CertStatus verify(const PublicValueCertificate& cert,
                    util::TimeUs now) const override;

  /// Cross-certify a subordinate CA: a certificate binding `child`'s RSA
  /// public key (serialized) under this CA's signature, so verifiers
  /// trusting this CA can verify certificates `child` issues.
  PublicValueCertificate delegate(const CertificateAuthority& child,
                                  util::BytesView child_name,
                                  util::TimeUs not_before,
                                  util::TimeUs not_after);

  /// Serialized form of this CA's public key, as embedded in a delegation
  /// certificate's public_value field.
  util::Bytes public_key_bytes() const;

  const crypto::RsaPublicKey& public_key() const { return key_.pub; }

 private:
  crypto::RsaPrivateKey key_;
  std::uint64_t next_serial_ = 1;
};

/// An end-entity certificate plus the delegation certificates linking its
/// issuer back to the root: {leaf, intermediate_n, ..., intermediate_1}
/// where intermediate_1 is signed by the root.
struct CertificateChain {
  PublicValueCertificate leaf;
  std::vector<PublicValueCertificate> delegations;  // leaf-issuer first
};

/// Verify a chain against the trusted root: every delegation must be a
/// valid signature by its parent (root last), and the leaf must verify
/// under the innermost delegated key. Returns the first failure.
CertStatus verify_chain(const crypto::RsaPublicKey& root,
                        const CertificateChain& chain, util::TimeUs now);

/// Verifier for hierarchical deployments: trusts `root` and carries the
/// delegation certificates for the organizational CA path that issues the
/// principal certificates this verifier will see. A leaf is valid iff
/// {leaf, delegations...} verifies back to the root.
class ChainVerifier final : public Verifier {
 public:
  ChainVerifier(crypto::RsaPublicKey root,
                std::vector<PublicValueCertificate> delegations)
      : root_(std::move(root)), delegations_(std::move(delegations)) {}

  CertStatus verify(const PublicValueCertificate& cert,
                    util::TimeUs now) const override {
    CertificateChain chain;
    chain.leaf = cert;
    chain.delegations = delegations_;
    return verify_chain(root_, chain, now);
  }

 private:
  crypto::RsaPublicKey root_;
  std::vector<PublicValueCertificate> delegations_;
};

}  // namespace fbs::cert
