#include "cert/directory.hpp"

#include <algorithm>

namespace fbs::cert {

namespace {
void set_error(WireDecodeError* error, WireDecodeError e) {
  if (error) *error = e;
}
}  // namespace

util::Bytes DirectoryRequest::serialize() const {
  util::ByteWriter w(5 + subject.size());
  w.u8(kWireKind);
  w.u32(static_cast<std::uint32_t>(subject.size()));
  w.bytes(subject);
  return w.take();
}

std::optional<DirectoryRequest> DirectoryRequest::parse(
    util::BytesView wire, WireDecodeError* error) {
  util::ByteReader r(wire);
  const auto kind = r.u8();
  if (!kind) {
    set_error(error, WireDecodeError::kTruncated);
    return std::nullopt;
  }
  if (*kind != kWireKind) {
    set_error(error, WireDecodeError::kBadValue);
    return std::nullopt;
  }
  const auto len = r.u32();
  if (!len) {
    set_error(error, WireDecodeError::kTruncated);
    return std::nullopt;
  }
  if (*len > PublicValueCertificate::kMaxFieldSize) {
    set_error(error, WireDecodeError::kOversizedField);
    return std::nullopt;
  }
  auto subject = r.bytes(*len);
  if (!subject) {
    set_error(error, WireDecodeError::kTruncated);
    return std::nullopt;
  }
  if (r.remaining() != 0) {
    set_error(error, WireDecodeError::kTrailingBytes);
    return std::nullopt;
  }
  return DirectoryRequest{std::move(*subject)};
}

util::Bytes DirectoryResponse::serialize() const {
  util::ByteWriter w;
  w.u8(kWireKind);
  w.u8(static_cast<std::uint8_t>(status));
  if (status == FetchStatus::kOk && cert) {
    const util::Bytes body = cert->serialize();
    w.u32(static_cast<std::uint32_t>(body.size()));
    w.bytes(body);
  }
  return w.take();
}

std::optional<DirectoryResponse> DirectoryResponse::parse(
    util::BytesView wire, WireDecodeError* error) {
  util::ByteReader r(wire);
  const auto kind = r.u8();
  const auto status_raw = r.u8();
  if (!kind || !status_raw) {
    set_error(error, WireDecodeError::kTruncated);
    return std::nullopt;
  }
  if (*kind != kWireKind ||
      *status_raw > static_cast<std::uint8_t>(FetchStatus::kUnavailable)) {
    set_error(error, WireDecodeError::kBadValue);
    return std::nullopt;
  }
  DirectoryResponse out;
  out.status = static_cast<FetchStatus>(*status_raw);
  if (out.status == FetchStatus::kOk) {
    const auto len = r.u32();
    if (!len) {
      set_error(error, WireDecodeError::kTruncated);
      return std::nullopt;
    }
    // The certificate's own per-field caps bound each inner length; the
    // outer frame only needs to agree with the buffer.
    const auto body = r.bytes(*len);
    if (!body) {
      set_error(error, WireDecodeError::kTruncated);
      return std::nullopt;
    }
    out.cert = PublicValueCertificate::parse(*body, error);
    if (!out.cert) return std::nullopt;
  }
  if (r.remaining() != 0) {
    set_error(error, WireDecodeError::kTrailingBytes);
    return std::nullopt;
  }
  return out;
}

std::optional<DirectoryResponse> DirectoryService::serve_wire(
    util::BytesView request_wire) {
  WireDecodeError err{};
  const auto request = DirectoryRequest::parse(request_wire, &err);
  if (!request) {
    ++decode_rejects_[static_cast<std::size_t>(err)];
    return std::nullopt;
  }
  const FetchResult result = fetch(request->subject);
  DirectoryResponse response;
  response.status = result.status;
  if (result.ok()) response.cert = result.cert;
  return response;
}

bool DirectoryService::publish_wire(util::BytesView cert_wire) {
  WireDecodeError err{};
  const auto cert = PublicValueCertificate::parse(cert_wire, &err);
  if (!cert) {
    ++decode_rejects_[static_cast<std::size_t>(err)];
    return false;
  }
  publish(*cert);
  return true;
}

void DirectoryService::publish(const PublicValueCertificate& cert) {
  certs_[cert.subject] = cert;
}

void DirectoryService::revoke(util::BytesView subject) {
  certs_.erase(util::Bytes(subject.begin(), subject.end()));
}

void DirectoryService::set_fault_plan(const FaultPlan& plan) {
  plan_ = plan;
  fault_rng_ = util::SplitMix64(plan.seed);
  burst_remaining_ = 0;
}

void DirectoryService::add_outage(util::TimeUs from, util::TimeUs until) {
  outages_.push_back({from, until});
}

bool DirectoryService::fault_now() {
  if (clock_) {
    const util::TimeUs now = clock_->now();
    bool down = false;
    std::erase_if(outages_, [&](const Outage& o) {
      if (now >= o.until) return true;
      if (now >= o.from) down = true;
      return false;
    });
    if (down) return true;
  }
  if (!plan_) return false;
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    return true;
  }
  if (plan_->fail_probability > 0 &&
      fault_rng_.next_double() < plan_->fail_probability) {
    burst_remaining_ = plan_->fail_burst ? plan_->fail_burst - 1 : 0;
    return true;
  }
  return false;
}

FetchResult DirectoryService::fetch(util::BytesView subject) {
  ++fetch_count_;
  util::TimeUs delay = rtt_;
  if (plan_ && plan_->slow_probability > 0 &&
      fault_rng_.next_double() < plan_->slow_probability) {
    delay += plan_->extra_latency;
    ++slow_fetches_;
  }
  total_fetch_delay_ += delay;
  if (clock_) clock_->advance(delay);
  if (fault_now()) {
    ++failed_fetches_;
    return {FetchStatus::kUnavailable, std::nullopt};
  }
  const auto it = certs_.find(util::Bytes(subject.begin(), subject.end()));
  if (it == certs_.end()) return {FetchStatus::kNotFound, std::nullopt};
  return {FetchStatus::kOk, it->second};
}

void DirectoryService::register_metrics(obs::MetricsRegistry& registry,
                                        const std::string& prefix) const {
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".fetches", fetch_count_);
    emit.counter(prefix + ".failed", failed_fetches_);
    emit.counter(prefix + ".slow", slow_fetches_);
    emit.counter(prefix + ".fetch_delay_us", total_fetch_delay_);
    for (std::size_t i = 0; i < kWireDecodeErrorKinds; ++i)
      emit.counter(prefix + ".decode_rejects." +
                       to_string(static_cast<WireDecodeError>(i)),
                   decode_rejects_[i]);
  });
}

}  // namespace fbs::cert
