#include "cert/directory.hpp"

#include <algorithm>

namespace fbs::cert {

void DirectoryService::publish(const PublicValueCertificate& cert) {
  certs_[cert.subject] = cert;
}

void DirectoryService::revoke(util::BytesView subject) {
  certs_.erase(util::Bytes(subject.begin(), subject.end()));
}

void DirectoryService::set_fault_plan(const FaultPlan& plan) {
  plan_ = plan;
  fault_rng_ = util::SplitMix64(plan.seed);
  burst_remaining_ = 0;
}

void DirectoryService::add_outage(util::TimeUs from, util::TimeUs until) {
  outages_.push_back({from, until});
}

bool DirectoryService::fault_now() {
  if (clock_) {
    const util::TimeUs now = clock_->now();
    bool down = false;
    std::erase_if(outages_, [&](const Outage& o) {
      if (now >= o.until) return true;
      if (now >= o.from) down = true;
      return false;
    });
    if (down) return true;
  }
  if (!plan_) return false;
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    return true;
  }
  if (plan_->fail_probability > 0 &&
      fault_rng_.next_double() < plan_->fail_probability) {
    burst_remaining_ = plan_->fail_burst ? plan_->fail_burst - 1 : 0;
    return true;
  }
  return false;
}

FetchResult DirectoryService::fetch(util::BytesView subject) {
  ++fetch_count_;
  util::TimeUs delay = rtt_;
  if (plan_ && plan_->slow_probability > 0 &&
      fault_rng_.next_double() < plan_->slow_probability) {
    delay += plan_->extra_latency;
    ++slow_fetches_;
  }
  total_fetch_delay_ += delay;
  if (clock_) clock_->advance(delay);
  if (fault_now()) {
    ++failed_fetches_;
    return {FetchStatus::kUnavailable, std::nullopt};
  }
  const auto it = certs_.find(util::Bytes(subject.begin(), subject.end()));
  if (it == certs_.end()) return {FetchStatus::kNotFound, std::nullopt};
  return {FetchStatus::kOk, it->second};
}

void DirectoryService::register_metrics(obs::MetricsRegistry& registry,
                                        const std::string& prefix) const {
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".fetches", fetch_count_);
    emit.counter(prefix + ".failed", failed_fetches_);
    emit.counter(prefix + ".slow", slow_fetches_);
    emit.counter(prefix + ".fetch_delay_us", total_fetch_delay_);
  });
}

}  // namespace fbs::cert
