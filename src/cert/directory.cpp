#include "cert/directory.hpp"

namespace fbs::cert {

void DirectoryService::publish(const PublicValueCertificate& cert) {
  certs_[cert.subject] = cert;
}

void DirectoryService::revoke(util::BytesView subject) {
  certs_.erase(util::Bytes(subject.begin(), subject.end()));
}

std::optional<PublicValueCertificate> DirectoryService::fetch(
    util::BytesView subject) {
  ++fetch_count_;
  if (clock_) clock_->advance(rtt_);
  const auto it = certs_.find(util::Bytes(subject.begin(), subject.end()));
  if (it == certs_.end()) return std::nullopt;
  return it->second;
}

}  // namespace fbs::cert
