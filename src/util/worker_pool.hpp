// A small owned-thread pool running one user loop per worker.
//
// Deliberately not a task queue: the datagram pipeline statically assigns
// flow domains to workers (shard s belongs to worker s mod N), so each
// worker runs a bespoke drain loop over its own rings and per-flow ordering
// needs no further coordination. This class only owns the threads, the
// shared stop flag, and the shutdown handshake.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace fbs::util {

class WorkerPool {
 public:
  /// The worker body: runs until it observes `stop` true (and has drained
  /// whatever its contract says must not be abandoned).
  using Loop =
      std::function<void(std::size_t worker, const std::atomic<bool>& stop)>;

  WorkerPool() = default;
  ~WorkerPool() { stop(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Called inside stop() after the flag is set, before joining: must wake
  /// any condition variables the loops may be blocked on.
  void set_wake(std::function<void()> wake) { wake_ = std::move(wake); }

  void start(std::size_t workers, Loop loop) {
    stop();
    stop_.store(false, std::memory_order_relaxed);
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      threads_.emplace_back([this, i, loop] { loop(i, stop_); });
  }

  /// Idempotent: set the flag, wake sleepers, join everything.
  void stop() {
    if (threads_.empty()) return;
    stop_.store(true, std::memory_order_relaxed);
    if (wake_) wake_();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
  }

  std::size_t size() const { return threads_.size(); }
  const std::atomic<bool>& stop_flag() const { return stop_; }

 private:
  std::atomic<bool> stop_{false};
  std::function<void()> wake_;
  std::vector<std::thread> threads_;
};

}  // namespace fbs::util
