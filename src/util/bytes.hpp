// Byte-buffer utilities: big-endian codecs, hex conversion, constant-time
// comparison. All wire formats in this library are serialized through
// ByteWriter/ByteReader so that byte order is decided in exactly one place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fbs::util {

/// Owning byte buffer used throughout the library for wire data and keys.
using Bytes = std::vector<std::uint8_t>;

/// Read-only view over bytes; the library-wide parameter type for payloads.
using BytesView = std::span<const std::uint8_t>;

/// Build a Bytes from a string literal / std::string (no trailing NUL).
Bytes to_bytes(std::string_view s);

/// Interpret bytes as text (for tests and examples; not NUL-safe display).
std::string to_string(BytesView b);

/// Lower-case hex encoding, e.g. {0xde,0xad} -> "dead".
std::string to_hex(BytesView b);

/// Decode hex (upper or lower case). Returns nullopt on bad length/characters.
std::optional<Bytes> from_hex(std::string_view hex);

/// Constant-time equality for MACs and keys: does not early-exit on the first
/// differing byte, so timing does not leak the mismatch position.
bool ct_equal(BytesView a, BytesView b);

/// Append-only big-endian serializer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(BytesView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  /// Number of bytes written so far.
  std::size_t size() const { return buf_.size(); }

  /// Take the accumulated buffer; the writer is left empty.
  Bytes take() { return std::move(buf_); }
  const Bytes& view() const { return buf_; }

 private:
  Bytes buf_;
};

/// Bounds-checked big-endian deserializer over a non-owning view.
/// All accessors return nullopt once the view is exhausted; ok() stays false
/// afterwards so a parse can be validated with a single check at the end.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  /// Copy out exactly n bytes, or nullopt if fewer remain.
  std::optional<Bytes> bytes(std::size_t n);
  /// Everything not yet consumed.
  Bytes rest();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool ok() const { return ok_; }

 private:
  bool need(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fbs::util
