// Hierarchical timer wheel: O(expired) flow expiry for the million-flow
// control plane (DESIGN.md 5i).
//
// The paper's sweeper() (Figure 7) walks the whole flow state table to find
// entries whose last datagram is older than THRESHOLD. At 256 entries that
// is the right simplicity; at a million flows a sweep must cost what it
// expires, not what it stores. This is the classic hashed hierarchical
// wheel (Varghese & Lauck): kLevels wheels of kSlots buckets each, level L
// spanning kSlots^(L+1) ticks, with per-node cascading when a higher wheel's
// bucket comes due. advance() costs O(ticks elapsed + nodes fired + nodes
// cascaded) -- independent of how many timers are merely pending.
//
// Nodes are identified by dense caller-chosen 32-bit ids (the flow slab
// index of the owning table), so the wheel needs no id map of its own:
// node state lives in one flat vector indexed by id, links are 32-bit
// indices, and the whole structure is 24 bytes per node with no per-timer
// allocation.
//
// Not thread-safe; shard first, like every other piece of per-flow state.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace fbs::util {

class TimerWheel {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr unsigned kLevelBits = 6;             // 64 slots per level
  static constexpr std::size_t kSlots = std::size_t{1} << kLevelBits;
  static constexpr unsigned kLevels = 4;                // 64^4 ticks of range
  static constexpr std::uint64_t kMaxDelta =
      (std::uint64_t{1} << (kLevelBits * kLevels)) - 1;

  struct Stats {
    std::uint64_t scheduled = 0;    // schedule() calls (inserts + moves)
    std::uint64_t fired = 0;        // nodes delivered to advance()'s callback
    std::uint64_t cascaded = 0;     // nodes re-placed from a higher level
    std::uint64_t slot_visits = 0;  // buckets examined by advance()
  };

  /// `tick_shift`: log2 of the tick length in time units (20 with
  /// microsecond time gives ~1.05 s ticks, so minute-scale THRESHOLDs live
  /// on levels 0-1). `start`: current time; deadlines at or before the
  /// cursor are clamped one tick into the future.
  explicit TimerWheel(unsigned tick_shift = 20, std::int64_t start = 0)
      : tick_shift_(tick_shift),
        now_tick_(static_cast<std::uint64_t>(start < 0 ? 0 : start) >>
                  tick_shift) {
    for (auto& level : heads_) level.fill(kNil);
  }

  std::size_t live() const { return live_; }
  const Stats& stats() const { return stats_; }
  bool armed(std::uint32_t id) const {
    return id < nodes_.size() && nodes_[id].slot != kUnlinked;
  }

  /// Memory held by the node slab (slot heads are inline members).
  std::size_t memory_bytes() const { return nodes_.capacity() * sizeof(Node); }

  /// Pre-size the node slab for ids < n (budgeted callers allocate once).
  void reserve(std::uint32_t n) { nodes_.reserve(n); }

  /// Arm (or re-arm) timer `id` for `deadline`.
  void schedule(std::uint32_t id, std::int64_t deadline) {
    if (id >= nodes_.size()) nodes_.resize(id + 1);
    Node& n = nodes_[id];
    if (n.slot != kUnlinked) {
      unlink(id, n);
    } else {
      ++live_;
    }
    std::uint64_t tick =
        static_cast<std::uint64_t>(deadline < 0 ? 0 : deadline) >> tick_shift_;
    // Strictly-future placement: the currently processed tick never grows
    // new due work, so a callback re-arming its own id cannot loop.
    if (tick <= now_tick_) tick = now_tick_ + 1;
    n.deadline_tick = tick;
    link(id, n);
    ++stats_.scheduled;
  }

  /// Pop the armed timer with the (approximately) earliest deadline: scan
  /// level-0 buckets forward from the cursor, then each higher level's.
  /// Budgeted flow tables use this to evict the longest-idle flow; cost is
  /// O(kLevels * kSlots) worst case, independent of the number of timers.
  /// Returns kNil when nothing is armed. Ordering is approximate (bucket
  /// granularity within a level, head-of-bucket within a slot), which is
  /// exactly as much precision as an eviction heuristic needs.
  std::uint32_t pop_earliest() {
    for (unsigned level = 0; level < kLevels; ++level) {
      const std::size_t base = slot_of(now_tick_, level);
      for (std::size_t s = 1; s <= kSlots; ++s) {
        const std::size_t slot = (base + s) & (kSlots - 1);
        const std::uint32_t id = heads_[level][slot];
        if (id == kNil) continue;
        Node& n = nodes_[id];
        unlink(id, n);
        n.slot = kUnlinked;
        --live_;
        return id;
      }
    }
    return kNil;
  }

  /// Drop every armed timer; the cursor and node-slab capacity are kept, so
  /// a cleared wheel re-arms without allocating (crash/restart soft-state
  /// semantics).
  void clear() {
    for (auto& level : heads_) level.fill(kNil);
    nodes_.clear();
    live_ = 0;
  }

  /// Disarm `id` if armed (point-cancel: O(1), no scan).
  void cancel(std::uint32_t id) {
    if (id >= nodes_.size()) return;
    Node& n = nodes_[id];
    if (n.slot == kUnlinked) return;
    unlink(id, n);
    n.slot = kUnlinked;
    --live_;
  }

  /// Advance the cursor to `now`, invoking fire(id) for every timer whose
  /// deadline tick has been reached, in tick order. A fired timer is
  /// disarmed before its callback runs, so the callback may re-schedule the
  /// same id (the lazy re-arm idiom flow expiry uses).
  template <typename Fn>
  void advance(std::int64_t now, Fn&& fire) {
    const std::uint64_t target =
        static_cast<std::uint64_t>(now < 0 ? 0 : now) >> tick_shift_;
    while (now_tick_ < target) {
      ++now_tick_;
      // When a wheel wraps to slot 0, pull the next higher wheel's current
      // bucket down: each node re-places itself by its own deadline.
      for (unsigned level = 1; level < kLevels; ++level) {
        if (slot_of(now_tick_, level - 1) != 0) break;
        cascade(level);
      }
      // Level 0's current bucket is due exactly now.
      const std::size_t slot = slot_of(now_tick_, 0);
      ++stats_.slot_visits;
      std::uint32_t id = heads_[0][slot];
      heads_[0][slot] = kNil;
      while (id != kNil) {
        Node& n = nodes_[id];
        const std::uint32_t next = n.next;
        n.prev = n.next = kNil;
        n.slot = kUnlinked;
        --live_;
        ++stats_.fired;
        fire(id);
        id = next;
      }
    }
  }

 private:
  struct Node {
    std::uint64_t deadline_tick = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint16_t slot = kUnlinked;  // level * kSlots + slot when linked
    std::uint16_t pad = 0;
  };
  static constexpr std::uint16_t kUnlinked = 0xFFFF;

  static std::size_t slot_of(std::uint64_t tick, unsigned level) {
    return (tick >> (kLevelBits * level)) & (kSlots - 1);
  }

  /// Place a node by its deadline relative to the cursor: level L holds
  /// deltas in [kSlots^L, kSlots^(L+1)); beyond the top level's span the
  /// node parks in the top wheel and re-cascades until its delta fits.
  void link(std::uint32_t id, Node& n) {
    std::uint64_t delta =
        n.deadline_tick > now_tick_ ? n.deadline_tick - now_tick_ : 1;
    if (delta > kMaxDelta) delta = kMaxDelta;
    const std::uint64_t placed_tick = now_tick_ + delta;
    unsigned level = 0;
    while (level + 1 < kLevels && (delta >> (kLevelBits * (level + 1))))
      ++level;
    const std::size_t slot = slot_of(placed_tick, level);
    const std::size_t head = level * kSlots + slot;
    n.slot = static_cast<std::uint16_t>(head);
    n.prev = kNil;
    n.next = heads_[level][slot];
    if (n.next != kNil) nodes_[n.next].prev = id;
    heads_[level][slot] = id;
  }

  void unlink(std::uint32_t id, Node& n) {
    (void)id;
    if (n.prev != kNil) {
      nodes_[n.prev].next = n.next;
    } else {
      heads_[n.slot / kSlots][n.slot % kSlots] = n.next;
    }
    if (n.next != kNil) nodes_[n.next].prev = n.prev;
    n.prev = n.next = kNil;
  }

  /// Move every node of `level`'s current bucket down by its own deadline.
  void cascade(unsigned level) {
    const std::size_t slot = slot_of(now_tick_, level);
    ++stats_.slot_visits;
    std::uint32_t id = heads_[level][slot];
    heads_[level][slot] = kNil;
    while (id != kNil) {
      Node& n = nodes_[id];
      const std::uint32_t next = n.next;
      n.prev = n.next = kNil;
      link(id, n);
      ++stats_.cascaded;
      id = next;
    }
  }

  unsigned tick_shift_;
  std::uint64_t now_tick_;
  std::vector<Node> nodes_;
  std::array<std::array<std::uint32_t, kSlots>, kLevels> heads_;
  std::size_t live_ = 0;
  Stats stats_;
};

}  // namespace fbs::util
