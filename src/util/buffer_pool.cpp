#include "util/buffer_pool.hpp"

#include <algorithm>

namespace fbs::util {

BufferPool::BufferPool(const BufferPoolConfig& config) : config_(config) {
  if (config_.lanes == 0) config_.lanes = 1;
  if (config_.lane_cap == 0) config_.lane_cap = 1;
  lanes_ = std::vector<Lane>(config_.lanes);

  // Reserve every list once, up front: a lane holds at most lane_cap parked
  // buffers plus one refill chunk in flight, so lane push_back never grows
  // on the hot path. The shared list is capped at the whole slab plus one
  // lane_cap of slack per lane (foreign buffers released while every lane
  // is full); beyond that a release is discarded to keep memory bounded.
  const std::size_t lane_reserve = config_.lane_cap * 2;
  for (Lane& lane : lanes_) lane.free.reserve(lane_reserve);
  shared_cap_ = config_.slab_buffers + config_.lanes * config_.lane_cap;
  shared_.reserve(shared_cap_);

  // Carve the slab: fill each lane to its cap first (workers should find
  // warm buffers without touching the shared mutex), remainder shared.
  std::size_t remaining = config_.slab_buffers;
  for (Lane& lane : lanes_) {
    const std::size_t take = std::min(remaining, config_.lane_cap);
    for (std::size_t i = 0; i < take; ++i) {
      Bytes buffer;
      buffer.reserve(config_.buffer_bytes);
      lane.free.push_back(std::move(buffer));
    }
    remaining -= take;
  }
  for (std::size_t i = 0; i < remaining; ++i) {
    Bytes buffer;
    buffer.reserve(config_.buffer_bytes);
    shared_.push_back(std::move(buffer));
  }
  pooled_.store(static_cast<std::int64_t>(config_.slab_buffers),
                std::memory_order_relaxed);
}

Bytes BufferPool::acquire(std::size_t lane_index) {
  Lane& lane = lanes_[lane_index % lanes_.size()];
  if (lane.free.empty()) {
    // Dry lane: grab a chunk from the shared list (half a lane's worth, so
    // one refill amortizes the mutex over many subsequent acquires).
    std::lock_guard<std::mutex> lock(shared_mu_);
    const std::size_t take = std::min(
        shared_.size(), std::max<std::size_t>(1, config_.lane_cap / 2));
    for (std::size_t i = 0; i < take; ++i) {
      lane.free.push_back(std::move(shared_.back()));
      shared_.pop_back();
    }
    if (take > 0) refills_.fetch_add(1, std::memory_order_relaxed);
  }

  Bytes out;
  if (!lane.free.empty()) {
    out = std::move(lane.free.back());
    lane.free.pop_back();
    pooled_.fetch_sub(1, std::memory_order_relaxed);
  } else {
    heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    out.reserve(config_.buffer_bytes);
  }
  out.clear();

  acquires_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t now =
      outstanding_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::int64_t seen = high_water_.load(std::memory_order_relaxed);
  while (now > seen &&
         !high_water_.compare_exchange_weak(seen, now,
                                            std::memory_order_relaxed)) {
  }
  return out;
}

void BufferPool::release(std::size_t lane_index, Bytes&& buffer) {
  releases_.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_sub(1, std::memory_order_relaxed);

  Lane& lane = lanes_[lane_index % lanes_.size()];
  if (lane.free.size() < config_.lane_cap) {
    lane.free.push_back(std::move(buffer));
    pooled_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(shared_mu_);
  if (shared_.size() < shared_cap_) {
    shared_.push_back(std::move(buffer));
    pooled_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Pool saturated: let the buffer die rather than grow without bound.
  overflow_discards_.fetch_add(1, std::memory_order_relaxed);
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.acquires = acquires_.load(std::memory_order_relaxed);
  s.releases = releases_.load(std::memory_order_relaxed);
  s.heap_fallbacks = heap_fallbacks_.load(std::memory_order_relaxed);
  s.refills = refills_.load(std::memory_order_relaxed);
  s.overflow_discards = overflow_discards_.load(std::memory_order_relaxed);
  const std::int64_t hw = high_water_.load(std::memory_order_relaxed);
  s.high_water = hw > 0 ? static_cast<std::size_t>(hw) : 0;
  const std::int64_t pooled = pooled_.load(std::memory_order_relaxed);
  s.pooled = pooled > 0 ? static_cast<std::size_t>(pooled) : 0;
  return s;
}

}  // namespace fbs::util
