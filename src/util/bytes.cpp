#include "util/bytes.hpp"

#include <cctype>

namespace fbs::util {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

std::string to_hex(BytesView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0xf]);
  }
  return out;
}

namespace {
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_val(hex[i]);
    const int lo = hex_val(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

bool ByteReader::need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (!need(1)) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16() {
  if (!need(2)) return std::nullopt;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> ByteReader::u32() {
  if (!need(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
  if (!need(8)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 8;
  return v;
}

std::optional<Bytes> ByteReader::bytes(std::size_t n) {
  if (!need(n)) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::rest() {
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_), data_.end());
  pos_ = data_.size();
  return out;
}

}  // namespace fbs::util
