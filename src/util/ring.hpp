// Bounded multi-producer ring queue for the parallel datagram pipeline.
//
// The pipeline's ingress is one ring per flow domain (producers: whatever
// threads feed the stack; consumer: the one worker owning that shard) and
// its egress is one shared ring (producers: all workers; consumer: the
// single drain thread). Both shapes are MPSC with a hard capacity: a full
// ingress ring is backpressure -- the caller drops and counts, exactly like
// a NIC ring overflow -- while a full egress ring blocks the producing
// worker until the drain thread catches up (dropping a datagram that
// already paid for its cryptography would waste the work).
//
// A mutex+condvar ring, not a lock-free one: every slot carries an owned
// byte buffer, so the per-item cost is dominated by the datagram's
// cryptography (tens of microseconds); an uncontended mutex is noise at
// that scale and keeps the structure trivially ThreadSanitizer-clean.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace fbs::util {

template <typename T>
class BoundedMpscRing {
 public:
  explicit BoundedMpscRing(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  BoundedMpscRing(const BoundedMpscRing&) = delete;
  BoundedMpscRing& operator=(const BoundedMpscRing&) = delete;

  /// Non-blocking enqueue; false means the ring is full (backpressure --
  /// the caller decides whether that is a counted drop or a retry).
  bool try_push(T&& value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (count_ == slots_.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      slots_[(head_ + count_) % slots_.size()] = std::move(value);
      ++count_;
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking enqueue: waits for a free slot. Returns false (value
  /// dropped) if `cancel` becomes true while the ring is full -- the
  /// shutdown path, where the consumer may never drain again. The
  /// canceller must call wake_all() after setting the flag.
  bool push_wait(T&& value, const std::atomic<bool>& cancel) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return count_ < slots_.size() ||
             cancel.load(std::memory_order_relaxed);
    });
    if (count_ == slots_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[(head_ + count_) % slots_.size()] = std::move(value);
    ++count_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking dequeue into `out`; false when empty.
  bool try_pop(T& out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (count_ == 0) return false;
      out = std::move(slots_[head_]);
      head_ = (head_ + 1) % slots_.size();
      --count_;
    }
    not_full_.notify_one();
    return true;
  }

  /// Wake every waiter (shutdown); they re-check their predicates.
  void wake_all() {
    std::lock_guard<std::mutex> lock(mu_);
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  std::size_t capacity() const { return slots_.size(); }
  /// Values rejected because the ring was full (try_push) or cancelled
  /// while full (push_wait). The ring counts so every producer -- pipeline
  /// ingress shards above all -- gets per-ring drop attribution for free.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace fbs::util
