// Bounded multi-producer ring queue for the parallel datagram pipeline.
//
// The pipeline's ingress is one ring per flow domain (producers: whatever
// threads feed the stack; consumer: the one worker owning that shard) and
// its egress is one shared ring (producers: all workers; consumer: the
// single drain thread). Both shapes are MPSC with a hard capacity: a full
// ingress ring is backpressure -- the caller drops and counts, exactly like
// a NIC ring overflow -- while a full egress ring blocks the producing
// worker until the drain thread catches up (dropping a datagram that
// already paid for its cryptography would waste the work).
//
// Every entry point has a batch form -- try_push_batch / push_wait_batch /
// pop_batch -- that takes the mutex once and notifies once per burst, so a
// burst of N datagrams costs one lock acquisition instead of N. The
// single-item calls are one-element batches; there is exactly one
// implementation of each transfer direction.
//
// A mutex+condvar ring, not a lock-free one: every slot carries an owned
// byte buffer, so the per-item cost is dominated by the datagram's
// cryptography (tens of microseconds); an uncontended mutex is noise at
// that scale and keeps the structure trivially ThreadSanitizer-clean.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace fbs::util {

template <typename T>
class BoundedMpscRing {
 public:
  explicit BoundedMpscRing(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  BoundedMpscRing(const BoundedMpscRing&) = delete;
  BoundedMpscRing& operator=(const BoundedMpscRing&) = delete;

  /// Non-blocking batch enqueue: moves in as many of `values` as fit (a
  /// prefix -- order is preserved) and returns how many were accepted.
  /// Items that did not fit are counted as backpressure drops; the caller
  /// still owns them and decides whether that is a real drop or a retry.
  std::size_t try_push_batch(std::span<T> values) {
    std::size_t accepted = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      accepted = std::min(values.size(), slots_.size() - count_);
      for (std::size_t i = 0; i < accepted; ++i)
        place_locked(std::move(values[i]));
      if (accepted < values.size())
        dropped_.fetch_add(values.size() - accepted,
                           std::memory_order_relaxed);
    }
    if (accepted > 0) not_empty_.notify_one();
    return accepted;
  }

  /// Non-blocking enqueue; false means the ring is full (backpressure --
  /// the caller decides whether that is a counted drop or a retry).
  bool try_push(T&& value) {
    return try_push_batch(std::span<T>(&value, 1)) == 1;
  }

  /// Blocking batch enqueue: pushes every value, sleeping whenever the ring
  /// is full and moving in as large a chunk as fits each time a slot frees.
  /// Returns how many were pushed; fewer than `values.size()` only when
  /// `cancel` became true while the ring was full (the shutdown path, where
  /// the consumer may never drain again) -- the remainder is counted under
  /// cancelled_dropped(). The canceller must call wake_all() after setting
  /// the flag.
  std::size_t push_wait_batch(std::span<T> values,
                              const std::atomic<bool>& cancel) {
    std::size_t pushed = 0;
    while (pushed < values.size()) {
      std::size_t chunk = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock, [&] {
          return count_ < slots_.size() ||
                 cancel.load(std::memory_order_relaxed);
        });
        if (count_ == slots_.size()) {  // cancelled while still full
          cancelled_dropped_.fetch_add(values.size() - pushed,
                                       std::memory_order_relaxed);
          return pushed;
        }
        chunk = std::min(values.size() - pushed, slots_.size() - count_);
        for (std::size_t i = 0; i < chunk; ++i)
          place_locked(std::move(values[pushed + i]));
      }
      not_empty_.notify_one();
      pushed += chunk;
    }
    return pushed;
  }

  /// Blocking enqueue: waits for a free slot. Returns false (value
  /// dropped, counted under cancelled_dropped()) if `cancel` becomes true
  /// while the ring is full.
  bool push_wait(T&& value, const std::atomic<bool>& cancel) {
    return push_wait_batch(std::span<T>(&value, 1), cancel) == 1;
  }

  /// Non-blocking batch dequeue: appends up to `max` items to `out` (the
  /// caller reserves capacity to keep the burst allocation-free) and
  /// returns how many were moved. One lock, one producer wake per burst.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      n = std::min(max, count_);
      for (std::size_t i = 0; i < n; ++i) out.push_back(take_locked());
    }
    // A burst freed n slots; every blocked producer may be able to place
    // part of its batch now.
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Non-blocking dequeue into `out`; false when empty.
  bool try_pop(T& out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (count_ == 0) return false;
      out = take_locked();
    }
    not_full_.notify_one();
    return true;
  }

  /// Wake every waiter (shutdown); they re-check their predicates.
  void wake_all() {
    std::lock_guard<std::mutex> lock(mu_);
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  std::size_t capacity() const { return slots_.size(); }
  /// Values rejected because the ring was full on a non-blocking push:
  /// pure backpressure. The ring counts so every producer -- pipeline
  /// ingress shards above all -- gets per-ring drop attribution for free.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Values abandoned because push_wait(_batch) was cancelled while the
  /// ring was full: shutdown drops, kept separate from backpressure so the
  /// two failure modes stay distinguishable in the stats conservation
  /// equation (see DatagramPipeline::Stats).
  std::uint64_t cancelled_dropped() const {
    return cancelled_dropped_.load(std::memory_order_relaxed);
  }

 private:
  // Both helpers require mu_ held.
  void place_locked(T&& value) {
    slots_[(head_ + count_) % slots_.size()] = std::move(value);
    ++count_;
  }
  T take_locked() {
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    return value;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> cancelled_dropped_{0};
};

}  // namespace fbs::util
