// CRC-32 (IEEE 802.3 polynomial, reflected). Section 5.3 of the paper calls
// for CRC-32 as the cache-index hash because cache inputs (local network
// addresses, sequential sfl values) are highly correlated and simple
// modulo/XOR hashing clusters them.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace fbs::util {

/// One-shot CRC-32 of a buffer.
std::uint32_t crc32(BytesView data);

/// Incremental form: feed the previous return value back in as `state`.
/// Start from crc32_init() and finish with crc32_final().
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, BytesView data);
std::uint32_t crc32_final(std::uint32_t state);

}  // namespace fbs::util
