// Open-addressing flat hash table for million-flow bookkeeping.
//
// The paper's tables are sized for a campus LAN (~872 flows); the
// production-scale control plane (ROADMAP item 2, DESIGN.md 5i) keeps per-flow
// state for millions of concurrent flows, where node-based containers
// (std::map, std::list splice LRU) thrash the allocator and the cache. This
// is the one hash table all of that bookkeeping sits on: linear probing in a
// single contiguous slot array, tombstone-free backward-shift erasure, and a
// rehash counter so callers with a memory budget can assert the table never
// grows after warm-up ("zero heap-fallback growth in steady state").
//
// Design points:
//   - Slots store the mixed 64-bit hash alongside key/value; 0 marks an
//     empty slot (computed hashes are forced non-zero). Probes compare the
//     hash word first, so misses rarely touch the key bytes.
//   - The caller's Hash is finalized with mix64(), so identity-like hashes
//     (std::hash<uint64_t> on libstdc++) still probe uniformly.
//   - Erase backward-shifts the displaced run instead of leaving tombstones,
//     preserving the invariant that every element is reachable from its home
//     slot without crossing an empty slot -- lookups never degrade under
//     churn, which matters for flow tables that turn over continuously.
//   - Heterogeneous lookup (find/erase on any K the Hash/Eq accept) keeps
//     BytesView probes allocation-free, mirroring ByteRangeLess in caches.hpp.
//
// Not thread-safe; every user shards first (FlowDomain) and locks around the
// shard, exactly like the rest of the per-flow state.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/flow_hash.hpp"

namespace fbs::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>,
          typename Eq = std::equal_to<>>
class FlatMap {
 public:
  FlatMap() = default;

  /// Pre-size so `n` elements fit without rehashing. A budgeted caller
  /// reserves its budget up front and then asserts rehashes() stays flat.
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    // Grow until n fits under the max load factor (7/8).
    while (want - want / 8 < n) want <<= 1;
    if (want > slots_.size()) rehash(want, /*count=*/!slots_.empty());
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }
  double load_factor() const {
    return slots_.empty() ? 0.0
                          : static_cast<double>(size_) /
                                static_cast<double>(slots_.size());
  }
  /// Number of times the slot array was reallocated after initial use.
  std::uint64_t rehashes() const { return rehashes_; }
  /// Footprint of the slot array (the table's only heap block).
  std::size_t memory_bytes() const { return slots_.size() * sizeof(Slot); }

  template <typename K>
  Value* find(const K& key) {
    if (slots_.empty()) return nullptr;
    const std::uint64_t h = hash_of(key);
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.hash == 0) return nullptr;
      if (s.hash == h && Eq{}(s.key, key)) return &s.value;
    }
  }
  template <typename K>
  const Value* find(const K& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Insert `key` if absent; returns {slot value, inserted}. The pointer is
  /// valid until the next rehash or an erase that shifts the slot.
  std::pair<Value*, bool> try_emplace(const Key& key, Value value = Value{}) {
    maybe_grow();
    const std::uint64_t h = hash_of(key);
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.hash == 0) {
        s.hash = h;
        s.key = key;
        s.value = std::move(value);
        ++size_;
        return {&s.value, true};
      }
      if (s.hash == h && Eq{}(s.key, key)) return {&s.value, false};
    }
  }

  /// Insert or overwrite.
  Value* insert(const Key& key, Value value) {
    auto [slot, inserted] = try_emplace(key, std::move(value));
    if (!inserted) *slot = std::move(value);
    return slot;
  }

  /// Point-erase with backward shift; true if the key was present.
  template <typename K>
  bool erase(const K& key) {
    if (slots_.empty()) return false;
    const std::uint64_t h = hash_of(key);
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.hash == 0) return false;
      if (s.hash == h && Eq{}(s.key, key)) {
        shift_out(i);
        --size_;
        return true;
      }
    }
  }

  /// Visit every element as fn(const Key&, Value&). Erasing/inserting
  /// during the walk is not allowed.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_)
      if (s.hash != 0) fn(static_cast<const Key&>(s.key), s.value);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_)
      if (s.hash != 0) fn(s.key, s.value);
  }

  /// Drop every element, keeping the slot array (a budgeted table stays at
  /// its reserved footprint).
  void clear() {
    for (Slot& s : slots_) {
      if (s.hash != 0) {
        s.key = Key{};
        s.value = Value{};
        s.hash = 0;
      }
    }
    size_ = 0;
  }

  /// Test hook: every element must be reachable from its home slot without
  /// crossing an empty slot (the linear-probe invariant backward-shift
  /// erasure exists to preserve). O(capacity * probe length).
  bool check_invariants() const {
    if (slots_.empty()) return size_ == 0;
    const std::size_t mask = slots_.size() - 1;
    std::size_t live = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].hash == 0) continue;
      ++live;
      for (std::size_t j = slots_[i].hash & mask; j != i; j = (j + 1) & mask)
        if (slots_[j].hash == 0) return false;  // hole between home and slot
    }
    return live == size_;
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;  // mixed, non-zero when occupied
    Key key{};
    Value value{};
  };

  static constexpr std::size_t kMinCapacity = 16;

  template <typename K>
  static std::uint64_t hash_of(const K& key) {
    const std::uint64_t h = mix64(static_cast<std::uint64_t>(Hash{}(key)));
    return h == 0 ? 0x9E3779B97F4A7C15ull : h;
  }

  void maybe_grow() {
    if (slots_.empty()) {
      rehash(kMinCapacity, /*count=*/false);
    } else if (size_ + 1 > slots_.size() - slots_.size() / 8) {
      rehash(slots_.size() * 2, /*count=*/true);
    }
  }

  void rehash(std::size_t new_capacity, bool count) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    const std::size_t mask = new_capacity - 1;
    for (Slot& s : old) {
      if (s.hash == 0) continue;
      std::size_t i = s.hash & mask;
      while (slots_[i].hash != 0) i = (i + 1) & mask;
      slots_[i] = std::move(s);
    }
    if (count) ++rehashes_;
  }

  /// Backward-shift deletion: walk the probe run after the vacated slot,
  /// pulling each element back into the hole unless its home slot lies
  /// cyclically within (hole, element] -- moving such an element would put
  /// it BEFORE its home. (Stopping at the first at-home element is the
  /// classic wrong shortcut: a later element of the run may have wrapped
  /// past it and still need rescue.) The run ends at the first empty slot.
  /// No tombstones, so probe lengths never accrete.
  void shift_out(std::size_t i) {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t j = (i + 1) & mask;; j = (j + 1) & mask) {
      Slot& n = slots_[j];
      if (n.hash == 0) break;
      const std::size_t home = n.hash & mask;
      // home cyclically in (i, j] <=> n may not move back to i.
      const bool blocked = i <= j ? (i < home && home <= j)
                                  : (i < home || home <= j);
      if (blocked) continue;
      slots_[i] = std::move(n);
      i = j;
    }
    slots_[i].key = Key{};
    slots_[i].value = Value{};
    slots_[i].hash = 0;
  }

  std::vector<Slot> slots_;  // power-of-two size
  std::size_t size_ = 0;
  std::uint64_t rehashes_ = 0;
};

/// Transparent hash over raw byte ranges (util::Bytes keys probed with
/// BytesView), the FlatMap analogue of caches.hpp's ByteRangeLess.
struct ByteRangeHash {
  using is_transparent = void;
  std::uint64_t operator()(BytesView b) const { return flow_hash64(b); }
};

/// Transparent equality over raw byte ranges.
struct ByteRangeEq {
  using is_transparent = void;
  bool operator()(BytesView a, BytesView b) const {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
};

}  // namespace fbs::util
