#include "util/rng.hpp"

#include <chrono>
#include <random>

namespace fbs::util {

std::uint64_t RandomSource::next_below(std::uint64_t bound) {
  return bound == 0 ? 0 : next_u64() % bound;
}

double RandomSource::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Bytes RandomSource::next_bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t v = next_u64();
    for (int k = 0; k < 8 && i < n; ++k, ++i) {
      out[i] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

std::uint64_t SplitMix64::next_u64() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t kLcgA = 0x5DEECE66Dull;
constexpr std::uint64_t kLcgC = 0xBull;
constexpr std::uint64_t kLcgMask = (1ull << 48) - 1;
}  // namespace

Lcg48::Lcg48(std::uint64_t seed) : state_((seed ^ kLcgA) & kLcgMask) {}

std::uint32_t Lcg48::step32() {
  // Two 24-bit draws (top bits of the 48-bit state) per 32-bit value.
  state_ = (state_ * kLcgA + kLcgC) & kLcgMask;
  const std::uint32_t hi = static_cast<std::uint32_t>(state_ >> 24);
  state_ = (state_ * kLcgA + kLcgC) & kLcgMask;
  const std::uint32_t lo = static_cast<std::uint32_t>(state_ >> 24);
  return hi << 16 ^ lo;  // hi contributes 24 bits shifted; mix, don't truncate
}

std::uint64_t Lcg48::next_u64() {
  return static_cast<std::uint64_t>(step32()) << 32 | step32();
}

std::uint64_t entropy_seed() {
  std::random_device rd;
  std::uint64_t s = (static_cast<std::uint64_t>(rd()) << 32) | rd();
  s ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return s;
}

}  // namespace fbs::util
