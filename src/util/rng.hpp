// Random number generation.
//
// The paper distinguishes two grades of randomness (Sections 2.2 and 5.3):
//   - *statistical* randomness, enough for the per-datagram confounder; it
//     recommends the "highly efficient linear congruential generators"
//     (Knuth vol. 2) reseeded at every FBS initialization, and
//   - *cryptographic* randomness, needed for per-datagram keys in the
//     host-pair baseline; the quadratic-residue (Blum-Blum-Shub) generator is
//     named as the canonically secure but slow choice. BBS lives in
//     src/crypto (it needs bignum); the LCG lives here.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace fbs::util {

/// Abstract random source so protocol components can be driven
/// deterministically in tests and benches.
class RandomSource {
 public:
  virtual ~RandomSource() = default;
  virtual std::uint64_t next_u64() = 0;

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64()); }
  /// Uniform in [0, bound) for bound >= 1 (modulo bias is acceptable for the
  /// simulation uses this serves; cryptographic draws go through next_u64).
  std::uint64_t next_below(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double next_double();
  /// Fill a fresh buffer with n random bytes.
  Bytes next_bytes(std::size_t n);
};

/// SplitMix64: the library's general-purpose deterministic PRNG, used to seed
/// everything else and to drive simulations.
class SplitMix64 final : public RandomSource {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next_u64() override;

 private:
  std::uint64_t state_;
};

/// 48-bit linear congruential generator with the classic drand48 constants
/// (Knuth, The Art of Computer Programming vol. 2). This is the paper's
/// confounder generator: statistically random, extremely cheap, and reseeded
/// at each protocol initialization.
class Lcg48 final : public RandomSource {
 public:
  explicit Lcg48(std::uint64_t seed);
  /// Two 24-bit steps are combined into each 32-bit half (the high bits of an
  /// LCG are the strong ones), four steps per 64-bit output.
  std::uint64_t next_u64() override;
  std::uint32_t step32();

 private:
  std::uint64_t state_;  // 48 significant bits
};

/// Non-deterministic seed material for production use (std::random_device,
/// mixed with the clock). Tests should not call this.
std::uint64_t entropy_seed();

}  // namespace fbs::util
