#include "util/crc32.hpp"

#include <array>

namespace fbs::util {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, BytesView data) {
  for (std::uint8_t b : data) state = kTable[(state ^ b) & 0xFF] ^ (state >> 8);
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(BytesView data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace fbs::util
