// 64-bit flow hashing for shard selection.
//
// The sharded datagram engine partitions per-flow state into independent
// FlowDomains; the shard index must decorrelate inputs that differ in only
// a few bits (sequential sfls from one counter, IPv4 addresses sharing a
// prefix, ports differing in the low byte), or most flows pile onto one
// shard and the engine degenerates to single-threaded. This is the same
// requirement Section 5.3 places on the cache index hash, but for a
// different consumer: cache_index() picks a set within one table, while
// flow_hash64() picks which table (domain) a flow lives in. Keeping the two
// hash families distinct also means a pathological workload cannot align
// shard collisions with cache-set collisions.
//
// FNV-1a over the bytes followed by a splitmix64 finalizer: FNV mixes every
// input byte cheaply, the finalizer gives full avalanche so `hash % nshards`
// is uniform even for small nshards.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace fbs::util {

/// splitmix64 finalizer: bijective, full-avalanche mixing of a 64-bit word.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// FNV-1a 64 over `bytes`, finalized with mix64. `seed` domain-separates
/// independent consumers (send-side vs receive-side sharding).
inline std::uint64_t flow_hash64(BytesView bytes, std::uint64_t seed = 0) {
  std::uint64_t h = 0xCBF29CE484222325ull ^ mix64(seed);
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ull;  // FNV prime
  }
  return mix64(h);
}

/// Fold an extra 64-bit word (an sfl, a port pair) into a hash.
constexpr std::uint64_t flow_hash_combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ mix64(v));
}

}  // namespace fbs::util
