// Fixed-slab byte-buffer pool for the hot datagram path.
//
// The receive pipeline churns through two buffers per datagram (the
// ciphertext wire coming in, the plaintext body going out). Getting them
// from the global allocator costs a malloc/free pair per datagram and --
// worse on a many-core box -- migrates cache-hot buffers between cores as
// whichever thread frees them returns them to a shared arena. This pool
// pre-allocates a slab of identically-sized buffers once and then recycles
// them through per-worker free lists ("lanes"), so the steady-state path
// touches neither the allocator nor another core's cache lines (cf. IRON's
// packet_pool_shm.cc, which solves the same problem with a shared-memory
// slab of fixed Packet objects).
//
// Threading contract: each lane is owned by exactly one thread --
// acquire(lane)/release(lane) may only be called from that lane's owner, so
// the lane free lists need no locks at all. Only the shared overflow list
// (lane refill / lane spill) takes a mutex, and steady state never touches
// it: one acquire plus one release per datagram keeps every lane balanced.
//
// The pool never fails: when a lane and the shared list are both empty,
// acquire() falls back to the heap and counts it (`heap_fallbacks`), so an
// undersized pool degrades to exactly the old allocator behaviour instead
// of deadlocking -- the stats make the misconfiguration visible.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/bytes.hpp"

namespace fbs::util {

struct BufferPoolConfig {
  /// Capacity each slab buffer is pre-reserved to. Buffers larger than a
  /// datagram's wire image never need to grow on the hot path.
  std::size_t buffer_bytes = 2048;
  /// Total buffers pre-allocated up front (the slab).
  std::size_t slab_buffers = 256;
  /// Number of per-owner free lists. Clamped to >= 1.
  std::size_t lanes = 1;
  /// Max buffers parked per lane before a release spills to the shared
  /// list. Also sizes the refill chunk a dry lane grabs from it.
  std::size_t lane_cap = 32;
};

class BufferPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    /// Acquires served by the heap because lane and shared were both empty.
    std::uint64_t heap_fallbacks = 0;
    /// Lane refills from the shared list (cross-lane traffic indicator).
    std::uint64_t refills = 0;
    /// Releases discarded because the shared list hit its cap (the pool
    /// stays bounded even when foreign buffers keep flowing in).
    std::uint64_t overflow_discards = 0;
    /// Max buffers simultaneously outstanding (acquired, not released).
    std::size_t high_water = 0;
    /// Buffers parked in the pool right now (all lanes + shared).
    std::size_t pooled = 0;
  };

  explicit BufferPool(const BufferPoolConfig& config);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Take a cleared buffer with capacity >= buffer_bytes (pool-served) or a
  /// heap fallback reserved to buffer_bytes. Caller must own `lane`.
  Bytes acquire(std::size_t lane);

  /// Park a buffer for reuse. Any buffer is accepted -- including ones that
  /// never came from the pool -- which is what lets the pipeline swap
  /// caller wires in for pool bodies going out without the level draining.
  void release(std::size_t lane, Bytes&& buffer);

  std::size_t lane_count() const { return lanes_.size(); }
  std::size_t buffer_bytes() const { return config_.buffer_bytes; }
  Stats stats() const;

 private:
  struct alignas(64) Lane {
    std::vector<Bytes> free;
  };

  BufferPoolConfig config_;
  std::vector<Lane> lanes_;

  mutable std::mutex shared_mu_;
  std::vector<Bytes> shared_;
  std::size_t shared_cap_ = 0;

  std::atomic<std::uint64_t> acquires_{0};
  std::atomic<std::uint64_t> releases_{0};
  std::atomic<std::uint64_t> heap_fallbacks_{0};
  std::atomic<std::uint64_t> refills_{0};
  std::atomic<std::uint64_t> overflow_discards_{0};
  std::atomic<std::int64_t> outstanding_{0};
  std::atomic<std::int64_t> high_water_{0};
  std::atomic<std::int64_t> pooled_{0};
};

}  // namespace fbs::util
