// Logarithmically bucketed histogram used by the flow-characteristics
// experiments (Figures 9 and 10 plot distributions of flow sizes and
// durations, which span several orders of magnitude).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fbs::util {

class LogHistogram {
 public:
  /// Buckets are [base^k, base^(k+1)); base must be > 1.
  explicit LogHistogram(double base = 2.0);

  void add(double value, std::uint64_t count = 1);

  std::uint64_t total() const { return total_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const;

  /// Value below which `q` (0..1) of the mass lies, interpolated within the
  /// containing bucket. Exact for the recorded extremes.
  double quantile(double q) const;

  struct Bucket {
    double lo = 0;
    double hi = 0;
    std::uint64_t count = 0;
    double cum_fraction = 0;  // CDF at hi
  };
  /// Non-empty buckets in increasing order with cumulative fractions.
  std::vector<Bucket> buckets() const;

  /// Render an ASCII table + bar chart (used by the figure benches).
  std::string render(const std::string& value_label, int width = 40) const;

 private:
  int bucket_index(double value) const;

  double base_;
  double log_base_;
  std::vector<std::uint64_t> pos_;  // index k: [base^k, base^{k+1}), k>=0
  std::uint64_t zero_or_less_ = 0;  // values <= 1 fall here ([0, 1))
  std::uint64_t total_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace fbs::util
