#include "util/clock.hpp"

#include <chrono>

namespace fbs::util {

TimeUs SystemClock::now() const {
  using namespace std::chrono;
  const auto unix_us =
      duration_cast<microseconds>(system_clock::now().time_since_epoch())
          .count();
  return unix_us - kFbsEpochUnixSeconds * kMicrosPerSecond;
}

SteadyClock::SteadyClock()
    : base_(SystemClock{}.now()),
      steady_origin_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now()
                                .time_since_epoch())
                            .count()) {}

TimeUs SteadyClock::now() const {
  const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  return base_ + (now_ns - steady_origin_ns_) / 1000;
}

}  // namespace fbs::util
