#include "util/clock.hpp"

#include <chrono>

namespace fbs::util {

TimeUs SystemClock::now() const {
  using namespace std::chrono;
  const auto unix_us =
      duration_cast<microseconds>(system_clock::now().time_since_epoch())
          .count();
  return unix_us - kFbsEpochUnixSeconds * kMicrosPerSecond;
}

}  // namespace fbs::util
