#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace fbs::util {

LogHistogram::LogHistogram(double base)
    : base_(base),
      log_base_(std::log(base)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

int LogHistogram::bucket_index(double value) const {
  if (value < 1.0) return -1;
  return static_cast<int>(std::floor(std::log(value) / log_base_ + 1e-12));
}

void LogHistogram::add(double value, std::uint64_t count) {
  if (count == 0) return;
  const int idx = bucket_index(value);
  if (idx < 0) {
    zero_or_less_ += count;
  } else {
    if (static_cast<std::size_t>(idx) >= pos_.size()) pos_.resize(idx + 1, 0);
    pos_[idx] += count;
  }
  total_ += count;
  sum_ += value * static_cast<double>(count);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double LogHistogram::mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

std::vector<LogHistogram::Bucket> LogHistogram::buckets() const {
  std::vector<Bucket> out;
  std::uint64_t cum = 0;
  auto push = [&](double lo, double hi, std::uint64_t c) {
    if (c == 0) return;
    cum += c;
    out.push_back({lo, hi, c,
                   total_ ? static_cast<double>(cum) / static_cast<double>(total_)
                          : 0.0});
  };
  push(0.0, 1.0, zero_or_less_);
  for (std::size_t k = 0; k < pos_.size(); ++k) {
    push(std::pow(base_, static_cast<double>(k)),
         std::pow(base_, static_cast<double>(k + 1)), pos_[k]);
  }
  return out;
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<double>(total_) * q;
  double seen = 0;
  for (const auto& b : buckets()) {
    const auto c = static_cast<double>(b.count);
    if (seen + c >= target) {
      const double frac = c == 0 ? 0 : (target - seen) / c;
      double lo = std::max(b.lo, min_);
      double hi = std::min(b.hi, max_);
      if (hi < lo) hi = lo;
      return lo + (hi - lo) * frac;
    }
    seen += c;
  }
  return max_;
}

std::string LogHistogram::render(const std::string& value_label,
                                 int width) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "%-24s  %10s  %8s  %7s  %s\n", value_label.c_str(), "count",
                "frac", "cdf", "");
  out += line;
  std::uint64_t peak = 1;
  for (const auto& b : buckets()) peak = std::max(peak, b.count);
  for (const auto& b : buckets()) {
    const double frac =
        total_ ? static_cast<double>(b.count) / static_cast<double>(total_) : 0;
    const int bar = static_cast<int>(
        std::lround(static_cast<double>(b.count) / static_cast<double>(peak) *
                    width));
    std::snprintf(line, sizeof line, "[%9.5g, %9.5g)  %10llu  %7.2f%%  %6.2f%%  ",
                  b.lo, b.hi, static_cast<unsigned long long>(b.count),
                  frac * 100.0, b.cum_fraction * 100.0);
    out += line;
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

}  // namespace fbs::util
