// Time abstraction.
//
// All protocol and simulation time is expressed as microseconds since the
// FBS epoch, 00:00 GMT January 1 1996 -- the epoch the paper chooses for the
// 32-bit minute-resolution timestamp in the security flow header (Sec 7.2).
// Components take a Clock& so tests and the trace simulator can run on
// virtual time while examples run on the system clock.
#pragma once

#include <atomic>
#include <cstdint>

namespace fbs::util {

/// Microseconds since 00:00 GMT 1996-01-01.
using TimeUs = std::int64_t;

constexpr TimeUs kMicrosPerSecond = 1'000'000;
constexpr TimeUs kMicrosPerMinute = 60 * kMicrosPerSecond;

/// Unix time of the FBS epoch (1996-01-01T00:00:00Z).
constexpr std::int64_t kFbsEpochUnixSeconds = 820'454'400;

constexpr TimeUs seconds(std::int64_t s) { return s * kMicrosPerSecond; }
constexpr TimeUs minutes(std::int64_t m) { return m * kMicrosPerMinute; }

/// The header timestamp: whole minutes since the FBS epoch (Sec 5.3 uses
/// minute resolution as "a coarse protection against replays").
constexpr std::uint32_t to_header_minutes(TimeUs t) {
  return static_cast<std::uint32_t>(t / kMicrosPerMinute);
}

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeUs now() const = 0;
};

/// Manually driven clock for tests and discrete-event simulation.
///
/// now() is an atomic (relaxed) read so pipeline worker threads may consult
/// virtual time while the simulation thread advances it: a worker observing
/// a tick early or late is indistinguishable from scheduling skew, and the
/// protocol only consumes time at minute granularity. Advancing from more
/// than one thread is still the driver's job to serialize.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(TimeUs start = 0) : now_(start) {}
  TimeUs now() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void advance(TimeUs delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(TimeUs t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<TimeUs> now_;
};

/// Wall-clock time converted to the FBS epoch.
class SystemClock final : public Clock {
 public:
  TimeUs now() const override;
};

/// Monotonic wall time anchored to the FBS epoch: the system FBS time is
/// sampled once at construction and advances by std::chrono::steady_clock
/// deltas from there. now() never goes backwards (NTP steps and daylight
/// jumps cannot reorder protocol timers or replay windows), yet two
/// processes constructed around the same wall instant agree to within the
/// clock-step slop -- well inside the header timestamp's minute-granularity
/// freshness window, which is what cross-process interop needs.
class SteadyClock final : public Clock {
 public:
  SteadyClock();
  TimeUs now() const override;

 private:
  TimeUs base_;
  std::int64_t steady_origin_ns_;
};

}  // namespace fbs::util
