#include "trace/synth.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace fbs::trace {

namespace {

constexpr std::uint8_t kTcp = 6;
constexpr std::uint8_t kUdp = 17;
constexpr std::uint16_t kTelnetPort = 23;
constexpr std::uint16_t kFtpDataPort = 20;
constexpr std::uint16_t kFtpCtrlPort = 21;
constexpr std::uint16_t kDnsPort = 53;
constexpr std::uint16_t kHttpPort = 80;
constexpr std::uint16_t kX11Port = 6000;
constexpr std::uint16_t kNfsPort = 2049;

/// Exponential inter-arrival with the given mean.
util::TimeUs exp_gap(util::RandomSource& rng, double mean_us) {
  double u = rng.next_double();
  if (u < 1e-12) u = 1e-12;
  return static_cast<util::TimeUs>(-mean_us * std::log(u)) + 1;
}

/// Pareto sample (heavy tail): xm * U^{-1/alpha}, capped for sanity.
double pareto(util::RandomSource& rng, double xm, double alpha, double cap) {
  double u = rng.next_double();
  if (u < 1e-12) u = 1e-12;
  return std::min(cap, xm * std::pow(u, -1.0 / alpha));
}

/// Packet emission helper around a shared Trace.
class Emitter {
 public:
  Emitter(Trace& trace, util::TimeUs horizon) : trace_(trace),
                                                horizon_(horizon) {}

  /// Emit one packet; silently discards past-horizon packets.
  void packet(util::TimeUs t, std::uint8_t proto, std::uint32_t saddr,
              std::uint16_t sport, std::uint32_t daddr, std::uint16_t dport,
              std::uint32_t size) {
    if (t >= horizon_) return;
    PacketRecord r;
    r.time = t;
    r.tuple.protocol = proto;
    r.tuple.source_address = saddr;
    r.tuple.source_port = sport;
    r.tuple.destination_address = daddr;
    r.tuple.destination_port = dport;
    r.size = size;
    trace_.push_back(r);
  }

  util::TimeUs horizon() const { return horizon_; }

 private:
  Trace& trace_;
  util::TimeUs horizon_;
};

/// Per-host small ephemeral port pool (drives five-tuple reuse).
class PortPool {
 public:
  PortPool(util::RandomSource& rng, int size) {
    for (int i = 0; i < size; ++i)
      ports_.push_back(static_cast<std::uint16_t>(
          1024 + rng.next_below(30000)));
  }
  std::uint16_t draw(util::RandomSource& rng) const {
    return ports_[rng.next_below(ports_.size())];
  }

 private:
  std::vector<std::uint16_t> ports_;
};

std::uint32_t lan_desktop(int i) { return 0x0A010000u + 10 + i; }   // 10.1.0.x
std::uint32_t lan_server(int i) { return 0x0A010100u + 1 + i; }     // 10.1.1.x
constexpr std::uint32_t kWwwServer = 0x0A020001u;                   // 10.2.0.1
std::uint32_t www_client(int i) {
  return 0xAC100000u + 2 + static_cast<std::uint32_t>(i);           // 172.16.x
}

/// Interactive TELNET session: small keystroke packets with heavy-tailed
/// think times (occasionally minutes -- the "long TELNET session with large
/// quiet periods" of Section 7.1 that legitimately splits into flows).
void telnet_session(Emitter& em, util::RandomSource& rng, util::TimeUs start,
                    std::uint32_t client, std::uint16_t cport,
                    std::uint32_t server) {
  const double dur_us = pareto(rng, 120e6, 1.1, 3.6e9);  // median ~2 min
  util::TimeUs t = start;
  const util::TimeUs end = start + static_cast<util::TimeUs>(dur_us);
  while (t < end && t < em.horizon()) {
    const auto key_size = static_cast<std::uint32_t>(1 + rng.next_below(8));
    em.packet(t, kTcp, client, cport, server, kTelnetPort, key_size);
    // Echo + screen update back.
    em.packet(t + util::TimeUs{15'000}, kTcp, server, kTelnetPort, client,
              cport, static_cast<std::uint32_t>(16 + rng.next_below(112)));
    // Think time: mostly sub-second, occasionally a long quiet period.
    t += static_cast<util::TimeUs>(pareto(rng, 0.4e6, 1.15, 1.2e9));
  }
}

/// FTP: a short control conversation plus a heavy-tailed bulk data transfer
/// from server to client at 10 Mb/s pacing.
void ftp_session(Emitter& em, util::RandomSource& rng, util::TimeUs start,
                 std::uint32_t client, std::uint16_t ctrl_port,
                 std::uint16_t data_port, std::uint32_t server) {
  util::TimeUs t = start;
  for (int i = 0; i < 4; ++i) {  // USER/PASS/RETR/226 chit-chat
    em.packet(t, kTcp, client, ctrl_port, server, kFtpCtrlPort,
              static_cast<std::uint32_t>(16 + rng.next_below(48)));
    em.packet(t + util::TimeUs{20'000}, kTcp, server, kFtpCtrlPort, client,
              ctrl_port, static_cast<std::uint32_t>(32 + rng.next_below(64)));
    t += util::TimeUs{300'000};
  }
  const double file_bytes = pareto(rng, 8e3, 1.1, 50e6);  // heavy tail
  const auto packets = static_cast<std::uint64_t>(file_bytes / 1460) + 1;
  for (std::uint64_t i = 0; i < packets; ++i) {
    em.packet(t, kTcp, server, kFtpDataPort, client, data_port, 1460);
    t += util::TimeUs{1'200};  // ~10 Mb/s
  }
}

/// X11: bursts of small messages in both directions.
void x11_session(Emitter& em, util::RandomSource& rng, util::TimeUs start,
                 std::uint32_t client, std::uint16_t cport,
                 std::uint32_t server) {
  util::TimeUs t = start;
  const int bursts = static_cast<int>(3 + rng.next_below(20));
  for (int b = 0; b < bursts; ++b) {
    const int n = static_cast<int>(4 + rng.next_below(40));
    for (int i = 0; i < n; ++i) {
      em.packet(t, kTcp, client, cport, server, kX11Port,
                static_cast<std::uint32_t>(32 + rng.next_below(224)));
      if (rng.next_below(3) == 0)
        em.packet(t + util::TimeUs{5'000}, kTcp, server, kX11Port, client,
                  cport, static_cast<std::uint32_t>(32 + rng.next_below(992)));
      t += util::TimeUs{10'000};
    }
    t += exp_gap(rng, 5e6);  // inter-burst think time
  }
}

/// NFS: the long-lived periodic flow that carries the bulk of LAN bytes
/// (Figure 9's tail). Runs for the whole trace.
void nfs_pair(Emitter& em, util::RandomSource& rng, std::uint32_t client,
              std::uint16_t cport, std::uint32_t server) {
  util::TimeUs t = exp_gap(rng, 1e6);
  while (t < em.horizon()) {
    em.packet(t, kUdp, client, cport, server, kNfsPort,
              static_cast<std::uint32_t>(96 + rng.next_below(64)));
    // Read reply, up to 8KB.
    const auto reply = static_cast<std::uint32_t>(
        512 + rng.next_below(7680));
    em.packet(t + util::TimeUs{3'000}, kUdp, server, kNfsPort, client, cport,
              reply);
    t += exp_gap(rng, 0.4e6);
  }
}

void dns_exchange(Emitter& em, util::RandomSource& rng, util::TimeUs t,
                  std::uint32_t client, std::uint16_t cport,
                  std::uint32_t server) {
  em.packet(t, kUdp, client, cport, server, kDnsPort,
            static_cast<std::uint32_t>(30 + rng.next_below(34)));
  em.packet(t + util::TimeUs{2'000}, kUdp, server, kDnsPort, client, cport,
            static_cast<std::uint32_t>(80 + rng.next_below(240)));
}

/// One WWW hit: request up, heavy-tailed response down.
void www_hit(Emitter& em, util::RandomSource& rng, util::TimeUs t,
             std::uint32_t client, std::uint16_t cport) {
  em.packet(t, kTcp, client, cport, kWwwServer, kHttpPort,
            static_cast<std::uint32_t>(180 + rng.next_below(240)));
  const double response = pareto(rng, 2e3, 1.3, 5e6);
  auto remaining = static_cast<std::int64_t>(response);
  util::TimeUs rt = t + util::TimeUs{8'000};
  while (remaining > 0) {
    const auto n = static_cast<std::uint32_t>(std::min<std::int64_t>(
        remaining, 1460));
    em.packet(rt, kTcp, kWwwServer, kHttpPort, client, cport, n);
    remaining -= n;
    rt += util::TimeUs{1'200};
  }
}

}  // namespace

Trace generate_lan_trace(const LanWorkloadConfig& config) {
  Trace trace;
  Emitter em(trace, config.duration);
  util::SplitMix64 rng(config.seed);

  std::vector<PortPool> pools;
  pools.reserve(config.desktops);
  for (int i = 0; i < config.desktops; ++i)
    pools.emplace_back(rng, config.ephemeral_pool);

  auto server_of = [&](util::RandomSource& r) {
    return lan_server(static_cast<int>(
        r.next_below(config.file_servers + config.compute_servers)));
  };

  const double hour_us = 3600e6;
  for (int d = 0; d < config.desktops; ++d) {
    const std::uint32_t host = lan_desktop(d);

    // Poisson session arrivals over the trace for each application.
    for (util::TimeUs t = exp_gap(rng, hour_us / config.telnet_per_hour);
         t < config.duration;
         t += exp_gap(rng, hour_us / config.telnet_per_hour))
      telnet_session(em, rng, t, host, pools[d].draw(rng), server_of(rng));

    for (util::TimeUs t = exp_gap(rng, hour_us / config.ftp_per_hour);
         t < config.duration;
         t += exp_gap(rng, hour_us / config.ftp_per_hour))
      ftp_session(em, rng, t, host, pools[d].draw(rng), pools[d].draw(rng),
                  lan_server(static_cast<int>(
                      rng.next_below(config.file_servers))));

    for (util::TimeUs t = exp_gap(rng, hour_us / config.x11_per_hour);
         t < config.duration;
         t += exp_gap(rng, hour_us / config.x11_per_hour))
      x11_session(em, rng, t, host, pools[d].draw(rng),
                  lan_server(config.file_servers +
                             static_cast<int>(rng.next_below(
                                 config.compute_servers))));

    for (util::TimeUs t = exp_gap(rng, hour_us / config.dns_per_hour);
         t < config.duration;
         t += exp_gap(rng, hour_us / config.dns_per_hour))
      dns_exchange(em, rng, t, host, pools[d].draw(rng), lan_server(0));

    if (config.nfs_background && d % 3 == 0)  // a third of desktops mount NFS
      nfs_pair(em, rng, host, pools[d].draw(rng),
               lan_server(static_cast<int>(
                   rng.next_below(config.file_servers))));
  }

  sort_trace(trace);
  return trace;
}

Trace generate_www_trace(const WwwWorkloadConfig& config) {
  Trace trace;
  Emitter em(trace, config.duration);
  util::SplitMix64 rng(config.seed);

  std::vector<PortPool> pools;
  pools.reserve(config.client_population);
  for (int i = 0; i < config.client_population; ++i)
    pools.emplace_back(rng, config.ephemeral_pool);

  const double day_us = 86400e6;
  const double mean_gap = day_us / config.hits_per_day;
  for (util::TimeUs t = exp_gap(rng, mean_gap); t < config.duration;
       t += exp_gap(rng, mean_gap)) {
    const int c = static_cast<int>(rng.next_below(config.client_population));
    www_hit(em, rng, t, www_client(c), pools[c].draw(rng));
  }

  sort_trace(trace);
  return trace;
}

Trace merge_traces(std::initializer_list<const Trace*> traces) {
  Trace merged;
  for (const Trace* t : traces)
    merged.insert(merged.end(), t->begin(), t->end());
  sort_trace(merged);
  return merged;
}

Trace generate_campus_trace(std::uint64_t seed, util::TimeUs duration) {
  LanWorkloadConfig lan;
  lan.seed = seed;
  lan.duration = duration;
  WwwWorkloadConfig www;
  www.seed = seed ^ 0x5741424Bu;  // decorrelate the two generators
  www.duration = duration;
  const Trace a = generate_lan_trace(lan);
  const Trace b = generate_www_trace(www);
  return merge_traces({&a, &b});
}

}  // namespace fbs::trace
