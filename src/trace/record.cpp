#include "trace/record.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

namespace fbs::trace {

void sort_trace(Trace& trace) {
  std::stable_sort(trace.begin(), trace.end(),
                   [](const PacketRecord& a, const PacketRecord& b) {
                     return a.time < b.time;
                   });
}

void save_trace(const Trace& trace, std::ostream& out) {
  out << "# time_us proto saddr sport daddr dport size\n";
  for (const PacketRecord& r : trace) {
    out << r.time << ' ' << static_cast<unsigned>(r.tuple.protocol) << ' '
        << net::Ipv4Address{r.tuple.source_address}.to_string() << ' '
        << r.tuple.source_port << ' '
        << net::Ipv4Address{r.tuple.destination_address}.to_string() << ' '
        << r.tuple.destination_port << ' ' << r.size << '\n';
  }
}

std::optional<Trace> load_trace(std::istream& in) {
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    PacketRecord r;
    long long time;
    unsigned proto, sport, dport, size;
    std::string saddr, daddr;
    if (!(ls >> time >> proto >> saddr >> sport >> daddr >> dport >> size))
      return std::nullopt;
    const auto sa = net::Ipv4Address::parse(saddr);
    const auto da = net::Ipv4Address::parse(daddr);
    if (!sa || !da || proto > 255 || sport > 65535 || dport > 65535)
      return std::nullopt;
    r.time = time;
    r.tuple.protocol = static_cast<std::uint8_t>(proto);
    r.tuple.source_address = sa->value;
    r.tuple.source_port = static_cast<std::uint16_t>(sport);
    r.tuple.destination_address = da->value;
    r.tuple.destination_port = static_cast<std::uint16_t>(dport);
    r.size = size;
    trace.push_back(r);
  }
  return trace;
}

TraceSummary summarize(const Trace& trace) {
  TraceSummary s;
  std::set<util::Bytes> tuples;
  std::set<std::uint32_t> hosts;
  for (const PacketRecord& r : trace) {
    ++s.packets;
    s.bytes += r.size;
    if (s.packets == 1) {
      s.first = r.time;
      s.last = r.time;
    }
    s.first = std::min(s.first, r.time);
    s.last = std::max(s.last, r.time);
    tuples.insert(r.tuple.encode());
    hosts.insert(r.tuple.source_address);
    hosts.insert(r.tuple.destination_address);
  }
  s.distinct_tuples = tuples.size();
  s.distinct_hosts = hosts.size();
  return s;
}

}  // namespace fbs::trace
