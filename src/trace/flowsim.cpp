#include "trace/flowsim.hpp"

#include <algorithm>
#include <map>

namespace fbs::trace {

namespace {

/// Assign each packet to a flow with the Section 7.1 policy: same
/// five-tuple, inter-arrival gap <= threshold. Uses an exact table (the
/// paper notes hash collisions are "almost no[ne]" at reasonable FSTSIZE, so
/// the characteristics study can ignore them). Returns per-packet sfls and
/// the completed flow list.
struct Assignment {
  std::vector<core::Sfl> packet_sfl;
  std::vector<FlowRecord> flows;
  std::uint64_t repeated_flows = 0;
};

Assignment assign_flows(const Trace& trace, util::TimeUs threshold) {
  Assignment out;
  out.packet_sfl.reserve(trace.size());

  struct Open {
    std::size_t flow_index;  // into out.flows
  };
  std::map<util::Bytes, Open> open;
  std::map<util::Bytes, std::uint64_t> flows_per_tuple;
  core::Sfl next_sfl = 1;

  for (const PacketRecord& r : trace) {
    const util::Bytes key = r.tuple.encode();
    auto it = open.find(key);
    if (it != open.end()) {
      FlowRecord& f = out.flows[it->second.flow_index];
      if (r.time - f.last <= threshold) {
        f.last = r.time;
        ++f.packets;
        f.bytes += r.size;
        out.packet_sfl.push_back(f.sfl);
        continue;
      }
      open.erase(it);  // conversation gap exceeded: flow expired
    }
    // Start a new flow.
    auto& count = flows_per_tuple[key];
    if (count > 0) ++out.repeated_flows;
    ++count;
    FlowRecord f;
    f.sfl = next_sfl++;
    f.tuple = r.tuple;
    f.first = r.time;
    f.last = r.time;
    f.packets = 1;
    f.bytes = r.size;
    out.packet_sfl.push_back(f.sfl);
    open[key] = Open{out.flows.size()};
    out.flows.push_back(f);
  }
  return out;
}

}  // namespace

FlowSimResult simulate_flows(const Trace& trace, const FlowSimConfig& config) {
  FlowSimResult result;
  Assignment assignment = assign_flows(trace, config.threshold);
  result.flows = std::move(assignment.flows);
  result.repeated_flows = assignment.repeated_flows;

  for (const PacketRecord& r : trace) {
    ++result.total_packets;
    result.total_bytes += r.size;
  }

  if (trace.empty()) return result;

  // Active-flow time series by event sweep: +1 at flow start, -1 when the
  // sweeper would expire it (last + threshold).
  std::vector<std::pair<util::TimeUs, int>> events;
  events.reserve(result.flows.size() * 2);
  for (const FlowRecord& f : result.flows) {
    events.push_back({f.first, +1});
    events.push_back({f.last + config.threshold, -1});
  }
  std::sort(events.begin(), events.end());

  const util::TimeUs start = trace.front().time;
  const util::TimeUs end = trace.back().time + config.threshold;
  std::size_t active = 0;
  std::size_t event_index = 0;
  double active_sum = 0;
  std::size_t samples = 0;
  for (util::TimeUs t = start; t <= end; t += config.sample_interval) {
    while (event_index < events.size() && events[event_index].first <= t) {
      active += events[event_index].second;
      ++event_index;
    }
    result.active_series.push_back({t, active});
    result.peak_active = std::max(result.peak_active, active);
    active_sum += static_cast<double>(active);
    ++samples;
  }
  result.mean_active = samples ? active_sum / static_cast<double>(samples) : 0;
  return result;
}

std::vector<CacheMissPoint> simulate_cache_misses(
    const Trace& trace, util::TimeUs threshold,
    const std::vector<std::size_t>& cache_sizes, std::size_t ways,
    core::CacheHashKind hash) {
  const Assignment assignment = assign_flows(trace, threshold);

  std::vector<CacheMissPoint> out;
  for (const std::size_t size : cache_sizes) {
    CacheMissPoint point;
    point.cache_size = size;

    // Per-host caches, as deployed: each sender has a TFKC, each receiver
    // an RFKC.
    std::map<std::uint32_t, core::SetAssociativeCache<char>> tfkc, rfkc;
    auto cache_for = [&](auto& caches, std::uint32_t host)
        -> core::SetAssociativeCache<char>& {
      auto it = caches.find(host);
      if (it == caches.end())
        it = caches.emplace(host, core::SetAssociativeCache<char>(size, ways,
                                                                  hash))
                 .first;
      return it->second;
    };

    for (std::size_t i = 0; i < trace.size(); ++i) {
      const PacketRecord& r = trace[i];
      const core::Sfl sfl = assignment.packet_sfl[i];

      util::ByteWriter send_key(16);
      send_key.u64(sfl);
      send_key.u32(r.tuple.destination_address);
      send_key.u32(r.tuple.source_address);
      auto& t = cache_for(tfkc, r.tuple.source_address);
      if (!t.lookup(send_key.view())) t.insert(send_key.view(), 1);

      util::ByteWriter recv_key(16);
      recv_key.u64(sfl);
      recv_key.u32(r.tuple.source_address);
      recv_key.u32(r.tuple.destination_address);
      auto& c = cache_for(rfkc, r.tuple.destination_address);
      if (!c.lookup(recv_key.view())) c.insert(recv_key.view(), 1);
    }

    auto accumulate = [](auto& caches, core::CacheStats& total) {
      for (auto& [host, cache] : caches) {
        const core::CacheStats& s = cache.stats();
        total.hits += s.hits;
        total.cold_misses += s.cold_misses;
        total.capacity_misses += s.capacity_misses;
        total.collision_misses += s.collision_misses;
      }
    };
    accumulate(tfkc, point.send);
    accumulate(rfkc, point.receive);
    out.push_back(point);
  }
  return out;
}

}  // namespace fbs::trace
