// Packet-trace records: the tcpdump-equivalent input to the flow
// characteristics study (Section 7.3: "The collected traces are fed into a
// number of flow simulation programs to generate the final flow
// characteristics").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fbs/principal.hpp"
#include "util/clock.hpp"

namespace fbs::trace {

struct PacketRecord {
  util::TimeUs time = 0;
  core::FlowAttributes tuple;  // <proto, saddr, sport, daddr, dport>
  std::uint32_t size = 0;      // transport payload bytes
};

using Trace = std::vector<PacketRecord>;

/// Sort by time (stable on equal timestamps) -- generators emit per-session
/// streams that need interleaving.
void sort_trace(Trace& trace);

/// Text format, one record per line:
///   <time_us> <proto> <saddr> <sport> <daddr> <dport> <size>
/// (addresses dotted-quad), '#' comments allowed.
void save_trace(const Trace& trace, std::ostream& out);
std::optional<Trace> load_trace(std::istream& in);

/// Aggregate sanity numbers, used by tests and the figure benches' headers.
struct TraceSummary {
  std::size_t packets = 0;
  std::uint64_t bytes = 0;
  util::TimeUs first = 0;
  util::TimeUs last = 0;
  std::size_t distinct_tuples = 0;
  std::size_t distinct_hosts = 0;
};
TraceSummary summarize(const Trace& trace);

}  // namespace fbs::trace
