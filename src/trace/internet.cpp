#include "trace/internet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/flow_hash.hpp"

namespace fbs::trace {

namespace {

constexpr std::uint8_t kTcp = 6;
constexpr std::uint8_t kUdp = 17;
constexpr util::TimeUs kNever = std::numeric_limits<util::TimeUs>::max();

// Address plan: clients in 10/8, servers in 198.96/11-ish, spoofed DDoS
// sources in 64/8 -- three disjoint ranges so analyses can attribute any
// packet to its process by address alone.
constexpr std::uint32_t kClientBase = 0x0A000000u;
constexpr std::uint32_t kServerBase = 0xC6600000u;
constexpr std::uint32_t kSpoofBase = 0x40000000u;

constexpr std::uint16_t kServerPorts[] = {80, 443, 25, 53};

util::TimeUs exp_gap(util::RandomSource& rng, double mean_us) {
  double u = rng.next_double();
  if (u < 1e-12) u = 1e-12;
  return static_cast<util::TimeUs>(-mean_us * std::log(u)) + 1;
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint32_t n, double exponent) {
  cdf_.reserve(n ? n : 1);
  double total = 0;
  for (std::uint32_t r = 0; r < (n ? n : 1); ++r) {
    total += std::pow(static_cast<double>(r + 1), -exponent);
    cdf_.push_back(total);
  }
}

std::uint32_t ZipfSampler::sample(util::RandomSource& rng) const {
  const double u = rng.next_double() * cdf_.back();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const std::size_t idx = static_cast<std::size_t>(it - cdf_.begin());
  return static_cast<std::uint32_t>(idx < cdf_.size() ? idx
                                                      : cdf_.size() - 1);
}

InternetTraceGenerator::InternetTraceGenerator(
    const InternetWorkloadConfig& config)
    : config_(config),
      rng_(config.seed),
      client_ranks_(config.clients, config.client_zipf),
      server_ranks_(config.servers, config.server_zipf) {
  next_flow_ = exp_gap(rng_, 1e6 / config_.flows_per_second);
  next_ddos_ = kNever;
  if (config_.ddos_flows_per_second > 0 && config_.ddos_length > 0)
    schedule_next_ddos(config_.ddos_start);
}

bool InternetTraceGenerator::in_flash(util::TimeUs t) const {
  return config_.flash_multiplier > 1.0 && config_.flash_length > 0 &&
         t >= config_.flash_start &&
         t < config_.flash_start + config_.flash_length;
}

bool InternetTraceGenerator::in_ddos(util::TimeUs t) const {
  return t >= config_.ddos_start &&
         t < config_.ddos_start + config_.ddos_length;
}

void InternetTraceGenerator::schedule_next_flow(util::TimeUs from) {
  // Piecewise-constant rate: the gap is drawn at the window's rate at
  // `from`; a draw straddling the window edge is approximated, which keeps
  // the process deterministic and single-pass.
  const double rate = config_.flows_per_second *
                      (in_flash(from) ? config_.flash_multiplier : 1.0);
  next_flow_ = from + exp_gap(rng_, 1e6 / rate);
}

void InternetTraceGenerator::schedule_next_ddos(util::TimeUs from) {
  if (from < config_.ddos_start) from = config_.ddos_start;
  const util::TimeUs t =
      from + exp_gap(rng_, 1e6 / config_.ddos_flows_per_second);
  next_ddos_ =
      t < config_.ddos_start + config_.ddos_length ? t : kNever;
}

std::uint32_t InternetTraceGenerator::packet_size() {
  // Pareto(xm=64, alpha=1.3) capped at an ethernet MTU payload.
  double u = rng_.next_double();
  if (u < 1e-12) u = 1e-12;
  return static_cast<std::uint32_t>(
      std::min(1460.0, 64.0 * std::pow(u, -1.0 / 1.3)));
}

InternetTraceGenerator::Session InternetTraceGenerator::make_session(
    util::TimeUs at, bool flash_excess) {
  Session s;
  s.next_time = at;
  s.seq = seq_++;
  const std::uint32_t client = client_ranks_.sample(rng_);
  const std::uint32_t server =
      flash_excess ? 0 : server_ranks_.sample(rng_);
  s.tuple.source_address = kClientBase + client;
  s.tuple.destination_address = kServerBase + server;
  s.tuple.destination_port = kServerPorts[server % 4];
  s.tuple.protocol = s.tuple.destination_port == 53 ? kUdp : kTcp;
  // Ephemeral port from the client's small fixed pool: a deterministic
  // function of (client, slot), so sessions from one client recur on the
  // same five-tuples (the repeated flows of Figure 14).
  const int pool = config_.ephemeral_pool > 0 ? config_.ephemeral_pool : 1;
  const std::uint64_t slot = rng_.next_below(static_cast<std::uint64_t>(pool));
  s.tuple.source_port = static_cast<std::uint16_t>(
      1024 + util::mix64(client * 131ull + slot) % 60000);
  double u = rng_.next_double();
  if (u < 1e-12) u = 1e-12;
  s.remaining = static_cast<std::uint32_t>(std::min(
      10000.0, 1.0 - (config_.mean_packets_per_flow - 1.0) * std::log(u)));
  // Per-session pacing around the configured mean.
  s.gap_mean_us =
      config_.mean_packet_gap_ms * 1000.0 * (0.5 + rng_.next_double());
  return s;
}

void InternetTraceGenerator::emit(PacketRecord& out, util::TimeUs t,
                                  const core::FlowAttributes& tuple,
                                  std::uint32_t size) {
  out.time = t;
  out.tuple = tuple;
  out.size = size;
}

bool InternetTraceGenerator::next(PacketRecord& out) {
  const util::TimeUs t_session =
      active_.empty() ? kNever : active_.top().next_time;
  const util::TimeUs t = std::min({t_session, next_flow_, next_ddos_});
  if (t >= config_.duration) return false;

  if (t == next_ddos_ && next_ddos_ <= t_session && next_ddos_ <= next_flow_) {
    // Spoofed single-packet flow at the victim: pure flow-table poison.
    core::FlowAttributes tuple;
    tuple.protocol = kTcp;
    tuple.source_address =
        kSpoofBase + static_cast<std::uint32_t>(rng_.next_below(
                         config_.ddos_spoof_population
                             ? config_.ddos_spoof_population
                             : 1));
    tuple.source_port =
        static_cast<std::uint16_t>(1024 + rng_.next_below(60000));
    tuple.destination_address = kServerBase;  // server rank 0
    tuple.destination_port = 80;
    emit(out, t, tuple, 40);
    ++ddos_flows_;
    schedule_next_ddos(t);
    return true;
  }

  if (t == next_flow_ && next_flow_ <= t_session) {
    // New flow: the excess probability mass of a flash window all lands on
    // the top-ranked server.
    bool flash_excess = false;
    if (in_flash(t)) {
      const double m = config_.flash_multiplier;
      flash_excess = rng_.next_double() < (m - 1.0) / m;
    }
    Session s = make_session(t, flash_excess);
    ++flows_started_;
    emit(out, t, s.tuple, 40);  // opening packet (SYN-sized)
    if (s.remaining > 1) {
      --s.remaining;
      s.next_time = t + exp_gap(rng_, s.gap_mean_us);
      active_.push(std::move(s));
    }
    schedule_next_flow(t);
    return true;
  }

  // In-flight session continues.
  Session s = active_.top();
  active_.pop();
  emit(out, s.next_time, s.tuple, packet_size());
  if (s.remaining > 1) {
    --s.remaining;
    s.next_time += exp_gap(rng_, s.gap_mean_us);
    active_.push(std::move(s));
  }
  return true;
}

std::size_t InternetTraceGenerator::approx_memory_bytes() const {
  return (client_ranks_.size() + server_ranks_.size()) * sizeof(double) +
         active_.size() * sizeof(Session);
}

Trace generate_internet_trace(const InternetWorkloadConfig& config) {
  InternetTraceGenerator gen(config);
  Trace trace;
  PacketRecord r;
  while (gen.next(r)) trace.push_back(r);
  return trace;
}

}  // namespace fbs::trace
