// Internet-scale synthetic workload (the million-flow control-plane input).
//
// The paper's traces are a campus LAN and a lightly hit WWW server; ROADMAP
// item 2 asks what the same FBS mechanisms do at an internet vantage point
// -- a backbone or large-site aggregation link where a million flows are
// concurrently inside THRESHOLD. This generator synthesizes that regime
// with the structure measurement studies agree on:
//
//   - Zipf-ranked client and server populations (a few busy principals
//     carry most sessions, with a long tail of one-flow hosts).
//   - Poisson flow arrivals; per-flow packet counts are heavy-tailed-ish
//     (geometric body), packet sizes Pareto with an MTU cap.
//   - A flash crowd window: arrivals multiply and skew toward the
//     top-ranked server (everyone fetching the same page).
//   - A DDoS window: spoofed single-packet flows at a configured rate
//     toward a victim server -- the worst case for per-flow state, since
//     every packet is a new flow that will never repeat.
//
// The generator is STREAMING: next() produces packets one at a time in
// nondecreasing timestamp order from O(active sessions) state, so a
// 10M-packet trace never materializes unless a caller asks
// generate_internet_trace() to collect it. Determinism: every draw comes
// from one SplitMix64 chain, so the same config yields the identical packet
// sequence, call for call.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "trace/record.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::trace {

struct InternetWorkloadConfig {
  std::uint64_t seed = 2047;
  util::TimeUs duration = util::minutes(10);

  std::uint32_t clients = 200000;   // Zipf-ranked source population
  std::uint32_t servers = 20000;    // Zipf-ranked destination population
  double client_zipf = 1.0;         // rank exponent (0 = uniform)
  double server_zipf = 0.9;

  double flows_per_second = 2000.0;   // baseline new-flow Poisson rate
  double mean_packets_per_flow = 12.0;
  double mean_packet_gap_ms = 50.0;   // within a flow
  int ephemeral_pool = 4;             // per-client port pool (repeat flows)

  /// Flash crowd: during [flash_start, flash_start + flash_length) the
  /// arrival rate is multiplied by flash_multiplier and the excess arrivals
  /// all target the top-ranked server. multiplier <= 1 disables.
  util::TimeUs flash_start = 0;
  util::TimeUs flash_length = 0;
  double flash_multiplier = 1.0;

  /// DDoS: during [ddos_start, ddos_start + ddos_length), spoofed
  /// single-packet flows arrive at ddos_flows_per_second targeting the
  /// victim (server rank 0). Sources are drawn uniformly from a spoof
  /// population far larger than the client space. Rate 0 disables.
  util::TimeUs ddos_start = 0;
  util::TimeUs ddos_length = 0;
  double ddos_flows_per_second = 0.0;
  std::uint32_t ddos_spoof_population = 1u << 22;
};

/// Zipf(s) sampler over ranks [0, n): O(n) doubles once, O(log n) per draw
/// via binary search of the cumulative weight table.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double exponent);
  std::uint32_t sample(util::RandomSource& rng) const;
  std::uint32_t size() const { return static_cast<std::uint32_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

class InternetTraceGenerator {
 public:
  explicit InternetTraceGenerator(const InternetWorkloadConfig& config);

  /// Produce the next packet (nondecreasing time). False once every source
  /// process has run past `duration`; the generator stays exhausted.
  bool next(PacketRecord& out);

  const InternetWorkloadConfig& config() const { return config_; }
  std::uint64_t flows_started() const { return flows_started_; }
  std::uint64_t ddos_flows() const { return ddos_flows_; }
  /// Upper bound on generator state (CDF tables + session heap).
  std::size_t approx_memory_bytes() const;

 private:
  struct Session {
    util::TimeUs next_time = 0;
    std::uint64_t seq = 0;  // tie-break: deterministic order at equal times
    core::FlowAttributes tuple;
    std::uint32_t remaining = 0;
    double gap_mean_us = 0;
    bool operator>(const Session& o) const {
      return next_time != o.next_time ? next_time > o.next_time
                                      : seq > o.seq;
    }
  };

  bool in_flash(util::TimeUs t) const;
  bool in_ddos(util::TimeUs t) const;
  void schedule_next_flow(util::TimeUs from);
  void schedule_next_ddos(util::TimeUs from);
  Session make_session(util::TimeUs at, bool flash_excess);
  std::uint32_t packet_size();
  void emit(PacketRecord& out, util::TimeUs t,
            const core::FlowAttributes& tuple, std::uint32_t size);

  InternetWorkloadConfig config_;
  util::SplitMix64 rng_;
  ZipfSampler client_ranks_;
  ZipfSampler server_ranks_;
  std::priority_queue<Session, std::vector<Session>, std::greater<>> active_;
  util::TimeUs next_flow_ = 0;
  util::TimeUs next_ddos_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t flows_started_ = 0;
  std::uint64_t ddos_flows_ = 0;
};

/// Collect the whole stream (tests and small configs only: a full
/// million-flow run is ~10M packets, several hundred MB materialized).
Trace generate_internet_trace(const InternetWorkloadConfig& config);

}  // namespace fbs::trace
