// Synthetic workload generators.
//
// The paper sniffed (a) a server-based campus workgroup LAN -- file and
// compute servers plus user desktops running interactive (TELNET, X) and
// sustained/periodic (FTP, NFS) conversations -- and (b) a lightly hit WWW
// server (~10,000 hits/day). Those tcpdump traces are unavailable, so these
// generators synthesize traffic with the same structure: many short
// interactive flows, heavy-tailed transfer sizes, a few long-lived periodic
// flows (NFS) carrying the bulk of the bytes, and ephemeral-port reuse that
// produces the "repeated flows" of Figure 14.
//
// Generators are deterministic in their seed, so figures regenerate
// identically run to run.
#pragma once

#include "trace/record.hpp"
#include "util/clock.hpp"

namespace fbs::trace {

struct LanWorkloadConfig {
  std::uint64_t seed = 1997;
  util::TimeUs duration = util::minutes(60);
  int desktops = 24;
  int file_servers = 2;
  int compute_servers = 2;

  // Mean session arrivals per desktop per hour.
  double telnet_per_hour = 1.5;
  double ftp_per_hour = 1.0;
  double x11_per_hour = 0.8;
  double dns_per_hour = 30.0;
  bool nfs_background = true;  // long-lived periodic flows to file servers

  /// Ephemeral source ports are drawn from a small per-host pool, so the
  /// same five-tuple recurs across sessions (repeated flows, Figure 14).
  int ephemeral_pool = 6;
};

/// Campus workgroup LAN (the Figure 9-14 input).
Trace generate_lan_trace(const LanWorkloadConfig& config);

struct WwwWorkloadConfig {
  std::uint64_t seed = 2026;
  util::TimeUs duration = util::minutes(60);
  double hits_per_day = 10000;
  int client_population = 200;
  int ephemeral_pool = 4;
};

/// Lightly hit WWW server trace.
Trace generate_www_trace(const WwwWorkloadConfig& config);

/// Interleave several traces into one time-sorted trace.
Trace merge_traces(std::initializer_list<const Trace*> traces);

/// The combined workload used by the figure benches: LAN + WWW.
Trace generate_campus_trace(std::uint64_t seed, util::TimeUs duration);

}  // namespace fbs::trace
