// Flow simulation programs (Section 7.3): apply the Section 7.1 security
// flow policy to a packet trace and compute the flow characteristics behind
// Figures 9-14, plus the key-cache miss behaviour behind Figure 11.
#pragma once

#include <cstdint>
#include <vector>

#include "fbs/caches.hpp"
#include "fbs/principal.hpp"
#include "trace/record.hpp"
#include "util/clock.hpp"

namespace fbs::trace {

/// One completed flow under the five-tuple+THRESHOLD policy.
struct FlowRecord {
  core::Sfl sfl = 0;
  core::FlowAttributes tuple;
  util::TimeUs first = 0;
  util::TimeUs last = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  util::TimeUs duration() const { return last - first; }
};

struct FlowSimConfig {
  util::TimeUs threshold = util::seconds(600);
  util::TimeUs sample_interval = util::seconds(10);
};

struct FlowSimResult {
  std::vector<FlowRecord> flows;

  /// Active flows (table entries not yet expired: a flow is active from its
  /// first datagram until THRESHOLD after its last) sampled over time --
  /// the Figure 12/13 series.
  std::vector<std::pair<util::TimeUs, std::size_t>> active_series;

  std::uint64_t total_packets = 0;
  std::uint64_t total_bytes = 0;

  /// Flows whose five-tuple already produced an earlier flow (Figure 14).
  std::uint64_t repeated_flows = 0;

  std::size_t peak_active = 0;
  double mean_active = 0;
};

FlowSimResult simulate_flows(const Trace& trace, const FlowSimConfig& config);

/// Figure 11: replay the trace through per-host flow key caches of several
/// sizes. Every packet makes one TFKC access at its source host (key
/// sfl|D|S) and one RFKC access at its destination host (key sfl|S|D);
/// stats aggregate across hosts.
struct CacheMissPoint {
  std::size_t cache_size = 0;
  core::CacheStats send;     // TFKC view
  core::CacheStats receive;  // RFKC view
};

std::vector<CacheMissPoint> simulate_cache_misses(
    const Trace& trace, util::TimeUs threshold,
    const std::vector<std::size_t>& cache_sizes, std::size_t ways = 1,
    core::CacheHashKind hash = core::CacheHashKind::kCrc32);

}  // namespace fbs::trace
