#include "fbs/megaflow.hpp"

namespace fbs::core {

MegaflowPolicy::MegaflowPolicy(std::size_t max_flows, util::TimeUs threshold,
                               SflAllocator& sfl_alloc, bool expire_in_mapper,
                               unsigned tick_shift)
    : max_flows_(max_flows ? max_flows : 1),
      threshold_(threshold),
      sfl_alloc_(sfl_alloc),
      expire_in_mapper_(expire_in_mapper),
      wheel_(tick_shift) {
  // Reserve the whole budget up front: steady state must not grow the heap
  // (the bench asserts rehashes() and slab_grows stay zero).
  slab_.reserve(max_flows_);
  free_.reserve(max_flows_);
  map_.reserve(max_flows_);
  wheel_.reserve(static_cast<std::uint32_t>(max_flows_));
  slab_reserved_ = slab_.capacity();
}

std::string MegaflowPolicy::name() const {
  return "megaflow(budget=" + std::to_string(max_flows_) +
         ",threshold=" + std::to_string(threshold_ / util::kMicrosPerSecond) +
         "s)";
}

std::uint32_t MegaflowPolicy::alloc_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void MegaflowPolicy::retire(std::uint32_t idx) {
  FlowStateEntry& e = slab_[idx];
  map_.erase(e.attrs);
  e.valid = false;
  free_.push_back(idx);
  --live_;
}

FlowStateEntry& MegaflowPolicy::start_flow(FlowStateEntry& e,
                                           const FlowAttributes& attrs,
                                           util::TimeUs now,
                                           std::uint64_t bytes) {
  e.valid = true;
  e.sfl = sfl_alloc_.allocate();
  e.attrs = attrs;
  e.created = now;
  e.last = now;
  e.datagrams = 1;
  e.bytes = bytes;
  ++stats_.flows_created;
  return e;
}

MapResult MegaflowPolicy::map(const Datagram& d, util::TimeUs now) {
  ++stats_.datagrams;
  if (std::uint32_t* idx = map_.find(d.attrs)) {
    FlowStateEntry& e = slab_[*idx];
    if (expire_in_mapper_ && flow_expired(e.last, now, threshold_)) {
      // Same conversation boundary the sweeper would have drawn; the slab
      // slot and map entry are reused in place for the successor flow. The
      // wheel timer stays at its stale deadline and lazily re-arms on fire.
      ++stats_.mapper_expirations;
      start_flow(e, d.attrs, now, d.body.size());
      return {e.sfl, true};
    }
    e.last = now;
    ++e.datagrams;
    e.bytes += d.body.size();
    ++stats_.mapper_hits;
    // Deliberately no wheel op here: a mapper hit is the per-datagram hot
    // path and must stay O(1). The timer fires at the old deadline, sees
    // the flow was active since, and re-arms (sweep()'s lazy re-arm).
    return {e.sfl, false};
  }

  if (live_ >= max_flows_) {
    // Budget full: reclaim the longest-idle flow. pop_earliest() orders by
    // *armed* deadline, which lazy re-arm lets lag behind true activity, so
    // probe a few candidates: a genuinely stale one is retired on the spot
    // (ordinary expiry, just pulled forward); active ones get their true
    // deadline re-armed -- fixing the wheel's ordering as a side effect --
    // and the oldest-seen is evicted if no stale flow turns up.
    std::uint32_t best = util::TimerWheel::kNil;
    bool reclaimed = false;
    for (int tries = 0; tries < 8; ++tries) {
      const std::uint32_t victim = wheel_.pop_earliest();
      if (victim == util::TimerWheel::kNil) break;
      FlowStateEntry& v = slab_[victim];
      if (flow_expired(v.last, now, threshold_)) {
        retire(victim);
        ++stats_.sweeper_expirations;
        reclaimed = true;
        break;
      }
      wheel_.schedule(victim, v.last + threshold_ + 1);
      if (best == util::TimerWheel::kNil || v.last < slab_[best].last)
        best = victim;
    }
    if (!reclaimed) {
      if (best == util::TimerWheel::kNil) return {sfl_alloc_.allocate(), true};
      wheel_.cancel(best);
      retire(best);
      ++mega_.budget_evictions;
    }
  }

  const std::uint32_t idx = alloc_slot();
  FlowStateEntry& e = start_flow(slab_[idx], d.attrs, now, d.body.size());
  map_.try_emplace(d.attrs, idx);
  wheel_.schedule(idx, now + threshold_ + 1);
  ++live_;
  if (live_ > mega_.peak_live_flows) mega_.peak_live_flows = live_;
  return {e.sfl, true};
}

std::size_t MegaflowPolicy::sweep(util::TimeUs now) {
  const util::TimerWheel::Stats before = wheel_.stats();
  std::size_t expired = 0;
  wheel_.advance(now, [&](std::uint32_t idx) {
    FlowStateEntry& e = slab_[idx];
    if (flow_expired(e.last, now, threshold_)) {
      retire(idx);
      ++expired;
    } else {
      // Flow was active since this timer was armed: lazy re-arm at the
      // true deadline.
      wheel_.schedule(idx, e.last + threshold_ + 1);
    }
  });
  const util::TimerWheel::Stats& after = wheel_.stats();
  mega_.sweep_touched += (after.fired - before.fired) +
                         (after.slot_visits - before.slot_visits);
  stats_.sweeper_expirations += expired;
  return expired;
}

void MegaflowPolicy::expire_flow(const FlowAttributes& attrs) {
  // Keyed point erase: O(1) map + wheel work, and -- unlike a policy whose
  // expiry walks the table -- no sweeper counter moves, so rekeying a flow
  // never perturbs the Figure 7 sweep statistics.
  if (std::uint32_t* idx = map_.find(attrs)) {
    const std::uint32_t i = *idx;
    wheel_.cancel(i);
    retire(i);
  }
}

const FlowStateEntry* MegaflowPolicy::find(const FlowAttributes& attrs) const {
  const std::uint32_t* idx = map_.find(attrs);
  return idx ? &slab_[*idx] : nullptr;
}

std::size_t MegaflowPolicy::active_flows(util::TimeUs now) const {
  // Metrics-path gauge: the one read-only walk, matching the semantics of
  // the fixed-table policies (live AND not yet past threshold). Datagram
  // and expiry paths never do this.
  std::size_t n = 0;
  map_.for_each([&](const FlowAttributes&, const std::uint32_t& idx) {
    if (!flow_expired(slab_[idx].last, now, threshold_)) ++n;
  });
  return n;
}

void MegaflowPolicy::clear() {
  map_.clear();
  wheel_.clear();
  slab_.clear();  // capacity retained: restart re-fills without allocating
  free_.clear();
  live_ = 0;
}

const MegaflowStats* MegaflowPolicy::mega_stats() const {
  const util::TimerWheel::Stats& w = wheel_.stats();
  mega_.wheel_cascades = w.cascaded;
  mega_.wheel_fires = w.fired;
  mega_.map_rehashes = map_.rehashes();
  mega_.slab_grows = slab_.capacity() > slab_reserved_ ? 1 : 0;
  mega_.live_flows = live_;
  mega_.map_load_factor = map_.load_factor();
  mega_.resident_bytes = map_.memory_bytes() +
                         slab_.capacity() * sizeof(FlowStateEntry) +
                         free_.capacity() * sizeof(std::uint32_t) +
                         wheel_.memory_bytes();
  return &mega_;
}

}  // namespace fbs::core
