// The Flow Association Mechanism (Section 5.1, Figure 1).
//
// The FAM separates outgoing datagrams into flows. It is policy driven:
// *mapper* modules classify a datagram to a flow-state-table entry and
// *sweeper* modules expire inactive flows. A FlowPolicy bundles the mapper
// and sweeper halves plus their shared table, mirroring Figure 7's
// FST/mapper()/sweeper() pseudo-code.
//
// State here is local to the sender only -- "the state is not distributed
// between the source and destination principals"; the receiver just
// demultiplexes on the sfl carried in each datagram.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fbs/caches.hpp"
#include "fbs/principal.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::core {

/// THE staleness predicate (Section 7.1): a flow whose last datagram
/// arrived strictly more than THRESHOLD ago has crossed a conversation
/// boundary. Every consumer -- the mapper probe, the sweeper, active-flow
/// accounting, the combined FST+TFKC fast path, and the timer-wheel expiry
/// of the million-flow policy -- must call this one inline, so an entry can
/// never be stale for the mapper yet alive for the sweeper (or vice versa).
/// A gap of exactly THRESHOLD continues the flow.
constexpr bool flow_expired(util::TimeUs last, util::TimeUs now,
                            util::TimeUs threshold) {
  return now - last > threshold;
}

/// One row of the flow state table (Figure 7's FSTEntry).
struct FlowStateEntry {
  bool valid = false;
  Sfl sfl = 0;
  FlowAttributes attrs;
  util::TimeUs created = 0;
  util::TimeUs last = 0;  // last datagram arrival time
  std::uint64_t datagrams = 0;
  std::uint64_t bytes = 0;  // payload bytes sent on this flow (key wear-out)
};

/// Security-flow-label allocator (Section 5.3): a 64-bit counter with a
/// randomized initial value, so labels are unique until the counter wraps
/// (by which time the master key must have changed) and a rebooted machine
/// does not reuse labels.
/// The counter is the one piece of send-side state shared by every flow
/// domain (sfl uniqueness must hold across shards), so it is a lone relaxed
/// atomic rather than per-domain state.
class SflAllocator {
 public:
  explicit SflAllocator(util::RandomSource& rng) : next_(rng.next_u64()) {}
  Sfl allocate() { return next_.fetch_add(1, std::memory_order_relaxed); }
  Sfl peek_next() const { return next_.load(std::memory_order_relaxed); }

 private:
  std::atomic<Sfl> next_;
};

struct FamStats {
  std::uint64_t datagrams = 0;
  std::uint64_t flows_created = 0;
  std::uint64_t mapper_hits = 0;          // datagram joined an existing flow
  std::uint64_t hash_evictions = 0;       // live entry displaced by collision
  std::uint64_t mapper_expirations = 0;   // entry stale at map time
  std::uint64_t sweeper_expirations = 0;  // entries invalidated by sweeper
};

struct MapResult {
  Sfl sfl = 0;
  bool new_flow = false;
};

/// Control-plane counters specific to the budgeted flat-hash/timer-wheel
/// policy (DESIGN.md 5i). Exposed through FlowPolicy::mega_stats() so the
/// obs registry can publish eviction pressure and wheel behaviour without
/// the engine knowing the concrete policy type.
struct MegaflowStats {
  std::uint64_t budget_evictions = 0;  // live flows evicted at the budget
  std::uint64_t wheel_cascades = 0;    // timer nodes re-placed across levels
  std::uint64_t wheel_fires = 0;       // timer callbacks delivered
  std::uint64_t sweep_touched = 0;     // entries + buckets examined expiring
  std::uint64_t map_rehashes = 0;      // flat-map growths after reserve
  std::uint64_t slab_grows = 0;        // entry-slab growths after reserve
  std::size_t live_flows = 0;          // snapshot at stats() time
  std::size_t peak_live_flows = 0;
  double map_load_factor = 0;
  std::size_t resident_bytes = 0;      // map + slab + wheel footprint
};

/// A pluggable mapper+sweeper pair with its flow state table.
class FlowPolicy {
 public:
  virtual ~FlowPolicy() = default;

  virtual std::string name() const = 0;

  /// Mapper: classify `d` into a flow (creating one if necessary) and
  /// return its sfl.
  virtual MapResult map(const Datagram& d, util::TimeUs now) = 0;

  /// Sweeper: scan the table and expire inactive flows; returns the number
  /// of flows expired.
  virtual std::size_t sweep(util::TimeUs now) = 0;

  /// Terminate the flow currently holding `attrs` (if any), so the next
  /// matching datagram starts a new flow with a new sfl. This is the
  /// rekeying hook of Section 5.2 ("rekeying can be easily accomplished via
  /// the FAM by changing the sfl").
  virtual void expire_flow(const FlowAttributes& attrs) { (void)attrs; }

  /// Inspect the live entry for `attrs` (nullptr if none); lets rekeying
  /// policy modules examine flow age and usage.
  virtual const FlowStateEntry* find(const FlowAttributes& attrs) const {
    (void)attrs;
    return nullptr;
  }

  /// Flows currently considered active.
  virtual std::size_t active_flows(util::TimeUs now) const = 0;

  /// Drop the whole flow state table (crash/restart simulation). Soft
  /// state: subsequent datagrams simply start fresh flows. This is the only
  /// path allowed to walk the table; point expiry goes through
  /// expire_flow()'s keyed erase.
  virtual void clear() {}

  virtual const FamStats& stats() const = 0;

  /// Budget/wheel counters for policies that have them (the megaflow
  /// policy); nullptr for the paper's fixed-table policies.
  virtual const MegaflowStats* mega_stats() const { return nullptr; }
};

/// The paper's example IP security flow policy (Section 7.1, Figure 7): a
/// flow is a sequence of datagrams with the same
/// <protocol, saddr, sport, daddr, dport> whose inter-arrival gaps never
/// exceed THRESHOLD. Table is direct-mapped by CRC-32 of the five-tuple;
/// a hash collision prematurely terminates the displaced flow (footnote 11:
/// harmless to security, rare for reasonable FSTSIZE).
class FiveTuplePolicy final : public FlowPolicy {
 public:
  FiveTuplePolicy(std::size_t fst_size, util::TimeUs threshold,
                  SflAllocator& sfl_alloc,
                  bool expire_in_mapper = true,
                  CacheHashKind hash = CacheHashKind::kCrc32);

  std::string name() const override;
  MapResult map(const Datagram& d, util::TimeUs now) override;
  std::size_t sweep(util::TimeUs now) override;
  void expire_flow(const FlowAttributes& attrs) override;
  const FlowStateEntry* find(const FlowAttributes& attrs) const override;
  std::size_t active_flows(util::TimeUs now) const override;
  void clear() override;
  const FamStats& stats() const override { return stats_; }

  util::TimeUs threshold() const { return threshold_; }
  const std::vector<FlowStateEntry>& table() const { return table_; }

 private:
  std::size_t index_of(const FlowAttributes& attrs) const;

  std::vector<FlowStateEntry> table_;
  util::TimeUs threshold_;
  SflAllocator& sfl_alloc_;
  bool expire_in_mapper_;
  CacheHashKind hash_;
  FamStats stats_;
};

/// Host-pair flows: one flow per (source address, destination address).
/// This is the paper's fallback for raw IP (footnote 10: "raw IP can be
/// considered as host-level flows") and the granularity SKIP-style schemes
/// are stuck with.
class HostPairPolicy final : public FlowPolicy {
 public:
  HostPairPolicy(std::size_t table_size, util::TimeUs threshold,
                 SflAllocator& sfl_alloc);

  std::string name() const override { return "host-pair"; }
  MapResult map(const Datagram& d, util::TimeUs now) override;
  std::size_t sweep(util::TimeUs now) override;
  std::size_t active_flows(util::TimeUs now) const override;
  void clear() override;
  const FamStats& stats() const override { return stats_; }

 private:
  std::vector<FlowStateEntry> table_;
  util::TimeUs threshold_;
  SflAllocator& sfl_alloc_;
  FamStats stats_;
};

/// Degenerate policy: every datagram is its own flow. This recreates the
/// per-datagram keying cost that Section 7.4 contrasts FBS against; used by
/// the ablation bench.
class PerDatagramPolicy final : public FlowPolicy {
 public:
  explicit PerDatagramPolicy(SflAllocator& sfl_alloc)
      : sfl_alloc_(sfl_alloc) {}

  std::string name() const override { return "per-datagram"; }
  MapResult map(const Datagram& d, util::TimeUs now) override;
  std::size_t sweep(util::TimeUs) override { return 0; }
  std::size_t active_flows(util::TimeUs) const override { return 0; }
  const FamStats& stats() const override { return stats_; }

 private:
  SflAllocator& sfl_alloc_;
  FamStats stats_;
};

}  // namespace fbs::core
