#include "fbs/domain.hpp"

#include "fbs/megaflow.hpp"

namespace fbs::core {

namespace {

std::unique_ptr<FlowPolicy> make_policy(const FbsConfig& config,
                                        SflAllocator& sfl_alloc) {
  if (config.max_flows_per_shard != 0)
    return std::make_unique<MegaflowPolicy>(config.max_flows_per_shard,
                                            config.flow_threshold, sfl_alloc,
                                            /*expire_in_mapper=*/true);
  return std::make_unique<FiveTuplePolicy>(
      config.fst_size, config.flow_threshold, sfl_alloc,
      /*expire_in_mapper=*/true, config.cache_hash);
}

}  // namespace

FlowDomain::FlowDomain(const FbsConfig& config, const util::Clock& clock,
                       SflAllocator& sfl_alloc,
                       std::uint64_t confounder_seed)
    : confounder_gen(confounder_seed),
      policy(make_policy(config, sfl_alloc)),
      combined(config.combined_fst_tfkc ? config.fst_size : 0),
      tfkc(config.tfkc_size, config.cache_ways, config.cache_hash),
      rfkc(config.rfkc_size, config.cache_ways, config.cache_hash),
      freshness(clock, config.freshness_window_minutes,
                config.strict_replay) {
  tracer.set_enabled(config.trace_stages);
}

}  // namespace fbs::core
