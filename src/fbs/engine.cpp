#include "fbs/engine.hpp"

#include "crypto/fused.hpp"

namespace fbs::core {

namespace {

/// 4-byte confounder + 4-byte timestamp, the MAC's non-payload input
/// (Section 5.2: MAC is keyed on Kf and covers confounder, timestamp and
/// payload).
util::Bytes mac_prefix(std::uint32_t confounder, std::uint32_t timestamp) {
  util::ByteWriter w(8);
  w.u32(confounder);
  w.u32(timestamp);
  return w.take();
}

/// Section 7.2: the 32-bit confounder is duplicated into the 64-bit DES IV.
std::uint64_t confounder_iv(std::uint32_t confounder) {
  return static_cast<std::uint64_t>(confounder) << 32 | confounder;
}

}  // namespace

const char* to_string(ReceiveError e) {
  switch (e) {
    case ReceiveError::kMalformed: return "malformed";
    case ReceiveError::kStale: return "stale";
    case ReceiveError::kReplay: return "replay";
    case ReceiveError::kUnknownPeer: return "unknown-peer";
    case ReceiveError::kBadMac: return "bad-mac";
    case ReceiveError::kDecryptFailed: return "decrypt-failed";
  }
  return "?";
}

FbsEndpoint::FbsEndpoint(Principal self, const FbsConfig& config,
                         KeyManager& keys, const util::Clock& clock,
                         util::RandomSource& rng)
    : self_(std::move(self)),
      config_(config),
      keys_(keys),
      clock_(clock),
      confounder_gen_(rng.next_u64()),
      sfl_alloc_(rng),
      policy_(std::make_unique<FiveTuplePolicy>(
          config.fst_size, config.flow_threshold, sfl_alloc_,
          /*expire_in_mapper=*/true, config.cache_hash)),
      combined_(config.combined_fst_tfkc ? config.fst_size : 0),
      tfkc_(config.tfkc_size, config.cache_ways, config.cache_hash),
      rfkc_(config.rfkc_size, config.cache_ways, config.cache_hash),
      freshness_(clock, config.freshness_window_minutes,
                 config.strict_replay),
      mac_(crypto::make_mac(config.suite.mac)) {
  tracer_.set_enabled(config.trace_stages);
}

util::Bytes FbsEndpoint::cache_key(Sfl sfl, const Principal& a,
                                   const Principal& b) {
  // TFKC index is (sfl, D, S); RFKC is (sfl, S, D). Including the local
  // principal covers multi-homed hosts (footnote 7).
  util::ByteWriter w(8 + a.address.size() + b.address.size());
  w.u64(sfl);
  w.bytes(a.address);
  w.bytes(b.address);
  return w.take();
}

bool FbsEndpoint::key_worn_out(const CombinedEntry& e,
                               util::TimeUs now) const {
  if (config_.rekey_after_datagrams &&
      e.datagrams >= config_.rekey_after_datagrams)
    return true;
  if (config_.rekey_after_bytes && e.bytes >= config_.rekey_after_bytes)
    return true;
  if (config_.rekey_after_age && now - e.created >= config_.rekey_after_age)
    return true;
  return false;
}

std::optional<std::pair<Sfl, util::Bytes>> FbsEndpoint::outgoing_flow(
    const Datagram& d) {
  const util::TimeUs now = clock_.now();

  if (config_.combined_fst_tfkc) {
    // Section 7.2 fast path: one CRC-32 probe resolves both the flow
    // mapping and the flow key; the sweeper is absorbed into the mapper.
    const std::size_t idx =
        cache_index(config_.cache_hash, d.attrs.encode(), combined_.size());
    CombinedEntry& e = combined_[idx];
    if (e.valid && e.attrs == d.attrs &&
        now - e.last <= config_.flow_threshold) {
      if (key_worn_out(e, now)) {
        ++send_stats_.lifetime_rekeys;
        e.valid = false;  // retire the worn key; fall through to a new flow
      } else {
        e.last = now;
        ++e.datagrams;
        e.bytes += d.body.size();
        return std::make_pair(e.sfl, e.key);
      }
    }
    const auto master = keys_.master_key(d.destination);
    if (!master) return std::nullopt;
    const Sfl sfl = sfl_alloc_.allocate();
    ++send_stats_.flow_keys_derived;
    auto derive_timer = tracer_.start(obs::Stage::kSendKeyDerive);
    util::Bytes key =
        derive_flow_key(kdf_hash_, sfl, *master, self_, d.destination);
    derive_timer.finish();
    e = CombinedEntry{true, d.attrs, sfl, key, now, now, 1, d.body.size()};
    return std::make_pair(sfl, std::move(key));
  }

  // Split path (Figures 4 and 6): FAM classification, then TFKC. The
  // lifetime policy module consults the FAM's entry and retires worn flows.
  if (const FlowStateEntry* entry = policy_->find(d.attrs)) {
    const bool worn =
        (config_.rekey_after_datagrams &&
         entry->datagrams >= config_.rekey_after_datagrams) ||
        (config_.rekey_after_bytes &&
         entry->bytes >= config_.rekey_after_bytes) ||
        (config_.rekey_after_age &&
         now - entry->created >= config_.rekey_after_age);
    if (worn) {
      ++send_stats_.lifetime_rekeys;
      policy_->expire_flow(d.attrs);
    }
  }
  const MapResult mapping = policy_->map(d, now);
  const util::Bytes ck = cache_key(mapping.sfl, d.destination, self_);
  if (auto* cached = tfkc_.lookup(ck)) return std::make_pair(mapping.sfl, *cached);
  const auto master = keys_.master_key(d.destination);
  if (!master) return std::nullopt;
  ++send_stats_.flow_keys_derived;
  auto derive_timer = tracer_.start(obs::Stage::kSendKeyDerive);
  util::Bytes key =
      derive_flow_key(kdf_hash_, mapping.sfl, *master, self_, d.destination);
  derive_timer.finish();
  tfkc_.insert(ck, key);
  return std::make_pair(mapping.sfl, std::move(key));
}

std::optional<util::Bytes> FbsEndpoint::protect(const Datagram& d,
                                                bool secret) {
  auto classify_timer = tracer_.start(obs::Stage::kSendClassify);
  const auto flow = outgoing_flow(d);
  classify_timer.finish();
  if (!flow) {
    ++send_stats_.key_unavailable;
    return std::nullopt;
  }
  const auto& [sfl, key] = *flow;

  FbsHeader header;
  header.suite = config_.suite;
  header.sfl = sfl;
  header.confounder = confounder_gen_.step32();
  header.timestamp_minutes = util::to_header_minutes(clock_.now());
  header.secret = secret && config_.suite.cipher != crypto::CipherAlgorithm::kNone;

  const util::Bytes prefix =
      mac_prefix(header.confounder, header.timestamp_minutes);

  util::Bytes body;
  if (header.secret &&
      config_.suite.mac == crypto::MacAlgorithm::kKeyedMd5 &&
      config_.suite.cipher == crypto::CipherAlgorithm::kDesCbc) {
    // Section 5.3 single-pass optimization: MAC and encryption in one loop
    // over the payload (bit-identical to the two-pass path).
    auto fused_timer = tracer_.start(obs::Stage::kSendFused);
    const crypto::Des des(
        util::BytesView(key).subspan(0, crypto::Des::kKeySize));
    auto fused = crypto::fused_keyed_md5_des_cbc(
        des, confounder_iv(header.confounder), key, prefix, d.body);
    header.mac = std::move(fused.mac);
    body = std::move(fused.ciphertext);
    ++send_stats_.encrypted;
  } else {
    {
      auto mac_timer = tracer_.start(obs::Stage::kSendMac);
      header.mac = mac_->compute(key, {prefix, d.body});
    }
    if (header.secret) {
      auto cipher_timer = tracer_.start(obs::Stage::kSendCipher);
      const crypto::Des des(
          util::BytesView(key).subspan(0, crypto::Des::kKeySize));
      body = crypto::encrypt(des, *crypto::cipher_mode(config_.suite.cipher),
                             confounder_iv(header.confounder), d.body);
      ++send_stats_.encrypted;
    } else {
      body = d.body;
    }
  }

  ++send_stats_.datagrams;
  auto wire_timer = tracer_.start(obs::Stage::kSendWire);
  util::Bytes wire = header.serialize();
  wire.insert(wire.end(), body.begin(), body.end());
  return wire;
}

std::optional<util::Bytes> FbsEndpoint::incoming_flow_key(
    const Principal& source, Sfl sfl) {
  const util::Bytes ck = cache_key(sfl, source, self_);
  if (auto* cached = rfkc_.lookup(ck)) return *cached;
  const auto master = keys_.master_key(source);
  if (!master) return std::nullopt;
  ++receive_stats_.flow_keys_derived;
  util::Bytes key = derive_flow_key(kdf_hash_, sfl, *master, source, self_);
  rfkc_.insert(ck, key);
  return key;
}

ReceiveError FbsEndpoint::reject(ReceiveError e) {
  ++receive_stats_.by_kind[static_cast<std::size_t>(e)];
  switch (e) {
    case ReceiveError::kMalformed: ++receive_stats_.rejected_malformed; break;
    case ReceiveError::kStale: ++receive_stats_.rejected_stale; break;
    case ReceiveError::kReplay: ++receive_stats_.rejected_replay; break;
    case ReceiveError::kUnknownPeer:
      ++receive_stats_.rejected_unknown_peer;
      break;
    case ReceiveError::kBadMac: ++receive_stats_.rejected_bad_mac; break;
    case ReceiveError::kDecryptFailed:
      ++receive_stats_.rejected_decrypt;
      break;
  }
  return e;
}

ReceiveOutcome FbsEndpoint::unprotect(const Principal& source,
                                      util::BytesView wire) {
  auto parse_timer = tracer_.start(obs::Stage::kRecvParse);
  auto parsed = FbsHeader::parse(wire);
  parse_timer.finish();
  if (!parsed) return reject(ReceiveError::kMalformed);
  FbsHeader& header = parsed->header;

  // (R3-4) freshness before any cryptography: stale datagrams cost nothing.
  // The check is read-only; the seen-MAC cache is only committed to after
  // the MAC verifies, so a forged body cannot poison it (see replay.hpp).
  auto fresh_timer = tracer_.start(obs::Stage::kRecvFreshness);
  const auto verdict = freshness_.check(header.timestamp_minutes, header.mac);
  fresh_timer.finish();
  switch (verdict) {
    case FreshnessChecker::Verdict::kFresh:
      break;
    case FreshnessChecker::Verdict::kStale:
      return reject(ReceiveError::kStale);
    case FreshnessChecker::Verdict::kReplay:
      return reject(ReceiveError::kReplay);
  }

  // (R5-6) recover the flow key from the sfl (RFKC-cached).
  auto key_timer = tracer_.start(obs::Stage::kRecvKey);
  const auto key = incoming_flow_key(source, header.sfl);
  key_timer.finish();
  if (!key) return reject(ReceiveError::kUnknownPeer);

  // (R10-11 first for secret datagrams -- see the header-comment deviation
  // note): recover the plaintext the MAC was computed over.
  util::Bytes body;
  if (header.secret) {
    auto cipher_timer = tracer_.start(obs::Stage::kRecvCipher);
    const auto mode = crypto::cipher_mode(header.suite.cipher);
    if (!mode) return reject(ReceiveError::kMalformed);
    const crypto::Des des(
        util::BytesView(*key).subspan(0, crypto::Des::kKeySize));
    auto plain =
        crypto::decrypt(des, *mode, confounder_iv(header.confounder),
                        parsed->body);
    if (!plain) return reject(ReceiveError::kDecryptFailed);
    body = std::move(*plain);
  } else {
    body = std::move(parsed->body);
  }

  // (R7-9) verify the MAC over confounder | timestamp | plaintext body.
  auto mac_timer = tracer_.start(obs::Stage::kRecvMac);
  const util::Bytes prefix =
      mac_prefix(header.confounder, header.timestamp_minutes);
  const auto suite_mac = crypto::make_mac(header.suite.mac);
  const util::Bytes expected = suite_mac->compute(*key, {prefix, body});
  const bool mac_ok = util::ct_equal(expected, header.mac);
  mac_timer.finish();
  if (!mac_ok) return reject(ReceiveError::kBadMac);

  // Only a verified datagram may enter the strict-replay seen-set.
  freshness_.commit(header.timestamp_minutes, header.mac);

  ++receive_stats_.accepted;
  ReceivedDatagram out;
  out.datagram.source = source;
  out.datagram.destination = self_;
  out.datagram.body = std::move(body);
  out.sfl = header.sfl;
  out.was_secret = header.secret;
  out.suite = header.suite;
  return out;
}

void FbsEndpoint::rekey(const FlowAttributes& attrs) {
  if (config_.combined_fst_tfkc) {
    const std::size_t idx =
        cache_index(config_.cache_hash, attrs.encode(), combined_.size());
    CombinedEntry& e = combined_[idx];
    if (e.valid && e.attrs == attrs) e.valid = false;
    return;
  }
  // Split mode: terminate the flow in the FAM; the next datagram maps to a
  // fresh sfl, whose key misses in the TFKC and is derived anew.
  policy_->expire_flow(attrs);
}

std::size_t FbsEndpoint::sweep() { return policy_->sweep(clock_.now()); }

void FbsEndpoint::clear_soft_state() {
  for (CombinedEntry& e : combined_) e.valid = false;
  tfkc_.clear();
  rfkc_.clear();
  policy_->clear();
  // A restarted receiver has no memory of recently seen MACs; the strict
  // replay extension degrades to the paper's window-only check (its design
  // guarantee: losing the cache is never worse than not having it).
  freshness_.clear();
}

}  // namespace fbs::core
