#include "fbs/engine.hpp"

#include <cassert>

#include "crypto/fused.hpp"

namespace fbs::core {

namespace {

/// The MAC's non-payload input: flags byte, suite byte, 4-byte confounder,
/// 4-byte timestamp (Section 5.2 keys the MAC on Kf over confounder,
/// timestamp and payload; we additionally cover the flags and algorithm
/// bytes we carry, because neither participates in any other computation
/// when the body is plaintext -- fuzzing found that an on-path attacker
/// could rewrite the cipher nibble of a non-secret datagram and still have
/// it accepted). Written into a stack buffer on the datagram path.
constexpr std::size_t kMacPrefixSize = 10;

void mac_prefix_into(std::uint8_t flags, std::uint8_t suite,
                     std::uint32_t confounder, std::uint32_t timestamp,
                     std::uint8_t out[kMacPrefixSize]) {
  out[0] = flags;
  out[1] = suite;
  for (int i = 0; i < 4; ++i) {
    out[2 + i] = static_cast<std::uint8_t>(confounder >> (24 - 8 * i));
    out[6 + i] = static_cast<std::uint8_t>(timestamp >> (24 - 8 * i));
  }
}

/// Section 7.2: the 32-bit confounder is duplicated into the 64-bit DES IV.
std::uint64_t confounder_iv(std::uint32_t confounder) {
  return static_cast<std::uint64_t>(confounder) << 32 | confounder;
}

/// Stack room for any MAC tag we produce (MD5 = 16, SHA-1 = 20).
constexpr std::size_t kMaxMacSize = 64;

}  // namespace

const char* to_string(ReceiveError e) {
  switch (e) {
    case ReceiveError::kMalformed: return "malformed";
    case ReceiveError::kStale: return "stale";
    case ReceiveError::kReplay: return "replay";
    case ReceiveError::kUnknownPeer: return "unknown-peer";
    case ReceiveError::kBadMac: return "bad-mac";
    case ReceiveError::kDecryptFailed: return "decrypt-failed";
  }
  return "?";
}

FbsEndpoint::FbsEndpoint(Principal self, const FbsConfig& config,
                         KeyManager& keys, const util::Clock& clock,
                         util::RandomSource& rng)
    : self_(std::move(self)),
      config_(config),
      keys_(keys),
      clock_(clock),
      confounder_gen_(rng.next_u64()),
      sfl_alloc_(rng),
      policy_(std::make_unique<FiveTuplePolicy>(
          config.fst_size, config.flow_threshold, sfl_alloc_,
          /*expire_in_mapper=*/true, config.cache_hash)),
      combined_(config.combined_fst_tfkc ? config.fst_size : 0),
      tfkc_(config.tfkc_size, config.cache_ways, config.cache_hash),
      rfkc_(config.rfkc_size, config.cache_ways, config.cache_hash),
      freshness_(clock, config.freshness_window_minutes,
                 config.strict_replay) {
  tracer_.set_enabled(config.trace_stages);
}

crypto::Mac& FbsEndpoint::suite_mac(crypto::MacAlgorithm alg) {
  const std::size_t idx = static_cast<std::size_t>(alg);
  assert(idx < suite_macs_.size());
  auto& slot = suite_macs_[idx];
  if (!slot) slot = crypto::make_mac(alg);
  return *slot;
}

void FbsEndpoint::cache_key_into(Sfl sfl, const Principal& a,
                                 const Principal& b, util::Bytes& out) {
  // TFKC index is (sfl, D, S); RFKC is (sfl, S, D). Including the local
  // principal covers multi-homed hosts (footnote 7).
  out.clear();
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(sfl >> (8 * i)));
  out.insert(out.end(), a.address.begin(), a.address.end());
  out.insert(out.end(), b.address.begin(), b.address.end());
}

bool FbsEndpoint::key_worn_out(const CombinedEntry& e,
                               util::TimeUs now) const {
  if (config_.rekey_after_datagrams &&
      e.datagrams >= config_.rekey_after_datagrams)
    return true;
  if (config_.rekey_after_bytes && e.bytes >= config_.rekey_after_bytes)
    return true;
  if (config_.rekey_after_age && now - e.created >= config_.rekey_after_age)
    return true;
  return false;
}

std::optional<std::pair<Sfl, FlowCryptoContext*>> FbsEndpoint::outgoing_flow(
    const Datagram& d) {
  const util::TimeUs now = clock_.now();

  if (config_.combined_fst_tfkc) {
    // Section 7.2 fast path: one CRC-32 probe resolves both the flow
    // mapping and the flow key; the sweeper is absorbed into the mapper.
    d.attrs.encode_into(scratch_attrs_);
    const std::size_t idx =
        cache_index(config_.cache_hash, scratch_attrs_, combined_.size());
    CombinedEntry& e = combined_[idx];
    if (e.valid && e.attrs == d.attrs &&
        now - e.last <= config_.flow_threshold) {
      if (key_worn_out(e, now)) {
        ++send_stats_.lifetime_rekeys;
        e.valid = false;  // retire the worn key; fall through to a new flow
      } else {
        e.last = now;
        ++e.datagrams;
        e.bytes += d.body.size();
        return std::make_pair(e.sfl, &e.ctx);
      }
    }
    const auto master = keys_.master_key(d.destination);
    if (!master) return std::nullopt;
    const Sfl sfl = sfl_alloc_.allocate();
    ++send_stats_.flow_keys_derived;
    auto derive_timer = tracer_.start(obs::Stage::kSendKeyDerive);
    util::Bytes key =
        derive_flow_key(kdf_hash_, sfl, *master, self_, d.destination);
    FlowCryptoContext ctx = make_flow_crypto_context(
        std::move(key), config_.suite, suite_mac(config_.suite.mac));
    derive_timer.finish();
    e.valid = true;
    e.attrs = d.attrs;
    e.sfl = sfl;
    e.ctx = std::move(ctx);
    e.created = e.last = now;
    e.datagrams = 1;
    e.bytes = d.body.size();
    return std::make_pair(sfl, &e.ctx);
  }

  // Split path (Figures 4 and 6): FAM classification, then TFKC. The
  // lifetime policy module consults the FAM's entry and retires worn flows.
  if (const FlowStateEntry* entry = policy_->find(d.attrs)) {
    const bool worn =
        (config_.rekey_after_datagrams &&
         entry->datagrams >= config_.rekey_after_datagrams) ||
        (config_.rekey_after_bytes &&
         entry->bytes >= config_.rekey_after_bytes) ||
        (config_.rekey_after_age &&
         now - entry->created >= config_.rekey_after_age);
    if (worn) {
      ++send_stats_.lifetime_rekeys;
      policy_->expire_flow(d.attrs);
    }
  }
  const MapResult mapping = policy_->map(d, now);
  cache_key_into(mapping.sfl, d.destination, self_, scratch_key_);
  if (auto* cached = tfkc_.lookup(scratch_key_))
    return std::make_pair(mapping.sfl, cached);
  const auto master = keys_.master_key(d.destination);
  if (!master) return std::nullopt;
  ++send_stats_.flow_keys_derived;
  auto derive_timer = tracer_.start(obs::Stage::kSendKeyDerive);
  util::Bytes key =
      derive_flow_key(kdf_hash_, mapping.sfl, *master, self_, d.destination);
  FlowCryptoContext ctx = make_flow_crypto_context(
      std::move(key), config_.suite, suite_mac(config_.suite.mac));
  derive_timer.finish();
  return std::make_pair(mapping.sfl,
                        tfkc_.insert(scratch_key_, std::move(ctx)));
}

bool FbsEndpoint::protect_into(const Datagram& d, bool secret,
                               util::Bytes& wire_out) {
  wire_out.clear();
  auto classify_timer = tracer_.start(obs::Stage::kSendClassify);
  const auto flow = outgoing_flow(d);
  classify_timer.finish();
  if (!flow) {
    ++send_stats_.key_unavailable;
    return false;
  }
  const auto& [sfl, ctx] = *flow;

  FbsHeaderView header;
  header.suite = config_.suite;
  header.sfl = sfl;
  header.confounder = confounder_gen_.step32();
  header.timestamp_minutes = util::to_header_minutes(clock_.now());
  header.secret =
      secret && config_.suite.cipher != crypto::CipherAlgorithm::kNone;

  std::uint8_t prefix[kMacPrefixSize];
  mac_prefix_into(header.flags_byte(), header.suite_byte(),
                  header.confounder, header.timestamp_minutes, prefix);
  std::uint8_t mac_buf[kMaxMacSize];
  const std::size_t mac_n = ctx->mac->mac_size();

  util::BytesView body;
  if (header.secret &&
      config_.suite.mac == crypto::MacAlgorithm::kKeyedMd5 &&
      config_.suite.cipher == crypto::CipherAlgorithm::kDesCbc) {
    // Section 5.3 single-pass optimization: MAC and encryption in one loop
    // over the payload (bit-identical to the two-pass path).
    auto fused_timer = tracer_.start(obs::Stage::kSendFused);
    crypto::fused_seal_into(*ctx->des, confounder_iv(header.confounder),
                            *ctx->mac, {prefix, kMacPrefixSize}, d.body, mac_buf,
                            scratch_body_);
    body = scratch_body_;
    ++send_stats_.encrypted;
  } else {
    {
      auto mac_timer = tracer_.start(obs::Stage::kSendMac);
      ctx->mac->begin();
      ctx->mac->update({prefix, kMacPrefixSize});
      ctx->mac->update(d.body);
      ctx->mac->finish_into(mac_buf);
    }
    if (header.secret) {
      auto cipher_timer = tracer_.start(obs::Stage::kSendCipher);
      crypto::encrypt_into(*ctx->des,
                           *crypto::cipher_mode(config_.suite.cipher),
                           confounder_iv(header.confounder), d.body,
                           scratch_body_);
      body = scratch_body_;
      ++send_stats_.encrypted;
    } else {
      body = d.body;
    }
  }
  header.mac = {mac_buf, mac_n};

  ++send_stats_.datagrams;
  auto wire_timer = tracer_.start(obs::Stage::kSendWire);
  wire_out.reserve(FbsHeader::kFixedSize + mac_n + body.size());
  header.serialize_into(wire_out);
  wire_out.insert(wire_out.end(), body.begin(), body.end());
  return true;
}

std::optional<util::Bytes> FbsEndpoint::protect(const Datagram& d,
                                                bool secret) {
  util::Bytes wire;
  if (!protect_into(d, secret, wire)) return std::nullopt;
  return wire;
}

FlowCryptoContext* FbsEndpoint::incoming_flow_context(
    const Principal& source, Sfl sfl, crypto::AlgorithmSuite suite) {
  cache_key_into(sfl, source, self_, scratch_key_);
  if (auto* cached = rfkc_.lookup(scratch_key_)) {
    // A receiver can see the same sfl under a different header suite; the
    // rare mismatch rebuilds the contexts from the cached key.
    ensure_suite(*cached, suite, suite_mac(suite.mac));
    return cached;
  }
  const auto master = keys_.master_key(source);
  if (!master) return nullptr;
  ++receive_stats_.flow_keys_derived;
  util::Bytes key = derive_flow_key(kdf_hash_, sfl, *master, source, self_);
  return rfkc_.insert(
      scratch_key_,
      make_flow_crypto_context(std::move(key), suite, suite_mac(suite.mac)));
}

ReceiveError FbsEndpoint::reject(ReceiveError e) {
  ++receive_stats_.by_kind[static_cast<std::size_t>(e)];
  switch (e) {
    case ReceiveError::kMalformed: ++receive_stats_.rejected_malformed; break;
    case ReceiveError::kStale: ++receive_stats_.rejected_stale; break;
    case ReceiveError::kReplay: ++receive_stats_.rejected_replay; break;
    case ReceiveError::kUnknownPeer:
      ++receive_stats_.rejected_unknown_peer;
      break;
    case ReceiveError::kBadMac: ++receive_stats_.rejected_bad_mac; break;
    case ReceiveError::kDecryptFailed:
      ++receive_stats_.rejected_decrypt;
      break;
  }
  return e;
}

ReceiveIntoOutcome FbsEndpoint::unprotect_into(const Principal& source,
                                               util::BytesView wire,
                                               util::Bytes& body_out) {
  auto parse_timer = tracer_.start(obs::Stage::kRecvParse);
  const auto header = FbsHeaderView::parse(wire);
  parse_timer.finish();
  if (!header) return reject(ReceiveError::kMalformed);

  // The header's algorithm field is attacker-controlled, and the NOP suite's
  // "MAC" is a public constant: honoring a wire-chosen kNull suite would let
  // anyone forge datagrams carrying sixteen zero bytes as the tag. Only an
  // endpoint explicitly configured for NOP measurement runs may accept it.
  if (header->suite.mac == crypto::MacAlgorithm::kNull &&
      config_.suite.mac != crypto::MacAlgorithm::kNull)
    return reject(ReceiveError::kMalformed);

  // (R3-4) freshness before any cryptography: stale datagrams cost nothing.
  // The check is read-only; the seen-MAC cache is only committed to after
  // the MAC verifies, so a forged body cannot poison it (see replay.hpp).
  auto fresh_timer = tracer_.start(obs::Stage::kRecvFreshness);
  const auto verdict =
      freshness_.check(header->timestamp_minutes, header->mac);
  fresh_timer.finish();
  switch (verdict) {
    case FreshnessChecker::Verdict::kFresh:
      break;
    case FreshnessChecker::Verdict::kStale:
      return reject(ReceiveError::kStale);
    case FreshnessChecker::Verdict::kReplay:
      return reject(ReceiveError::kReplay);
  }

  // (R5-6) recover the flow's crypto context from the sfl (RFKC-cached:
  // a hit returns the ready DES schedule and keyed MAC state).
  auto key_timer = tracer_.start(obs::Stage::kRecvKey);
  FlowCryptoContext* ctx =
      incoming_flow_context(source, header->sfl, header->suite);
  key_timer.finish();
  if (!ctx) return reject(ReceiveError::kUnknownPeer);

  std::uint8_t prefix[kMacPrefixSize];
  mac_prefix_into(header->flags_byte(), header->suite_byte(),
                  header->confounder, header->timestamp_minutes, prefix);
  std::uint8_t mac_buf[kMaxMacSize];
  const std::size_t mac_n = ctx->mac->mac_size();

  // (R10-11 first for secret datagrams -- see the header-comment deviation
  // note): recover the plaintext the MAC was computed over, computing the
  // expected MAC in the same pass where the suite allows it.
  if (header->secret) {
    const auto mode = crypto::cipher_mode(header->suite.cipher);
    if (!mode || !ctx->des) return reject(ReceiveError::kMalformed);
    if (header->suite.mac == crypto::MacAlgorithm::kKeyedMd5 &&
        header->suite.cipher == crypto::CipherAlgorithm::kDesCbc) {
      auto fused_timer = tracer_.start(obs::Stage::kRecvFused);
      const bool ok = crypto::fused_open_into(
          *ctx->des, confounder_iv(header->confounder), *ctx->mac,
          {prefix, kMacPrefixSize}, header->body, mac_buf, body_out);
      fused_timer.finish();
      if (!ok) return reject(ReceiveError::kDecryptFailed);
    } else {
      auto cipher_timer = tracer_.start(obs::Stage::kRecvCipher);
      const bool ok =
          crypto::decrypt_into(*ctx->des, *mode,
                               confounder_iv(header->confounder),
                               header->body, body_out);
      cipher_timer.finish();
      if (!ok) return reject(ReceiveError::kDecryptFailed);
      auto mac_timer = tracer_.start(obs::Stage::kRecvMac);
      ctx->mac->begin();
      ctx->mac->update({prefix, kMacPrefixSize});
      ctx->mac->update(body_out);
      ctx->mac->finish_into(mac_buf);
    }
  } else {
    body_out.assign(header->body.begin(), header->body.end());
    auto mac_timer = tracer_.start(obs::Stage::kRecvMac);
    ctx->mac->begin();
    ctx->mac->update({prefix, kMacPrefixSize});
    ctx->mac->update(body_out);
    ctx->mac->finish_into(mac_buf);
  }

  // (R7-9) the MAC covers flags | suite | confounder | timestamp | plaintext
  // body: every header bit is either authenticated here or validated by
  // parse (version, reserved flags) or by key selection (sfl).
  if (!util::ct_equal({mac_buf, mac_n}, header->mac))
    return reject(ReceiveError::kBadMac);

  // Only a verified datagram may enter the strict-replay seen-set.
  freshness_.commit(header->timestamp_minutes, header->mac);

  ++receive_stats_.accepted;
  return ReceivedInfo{header->sfl, header->secret, header->suite};
}

ReceiveOutcome FbsEndpoint::unprotect(const Principal& source,
                                      util::BytesView wire) {
  util::Bytes body;
  const ReceiveIntoOutcome outcome = unprotect_into(source, wire, body);
  if (const auto* err = std::get_if<ReceiveError>(&outcome)) return *err;
  const auto& info = std::get<ReceivedInfo>(outcome);
  ReceivedDatagram out;
  out.datagram.source = source;
  out.datagram.destination = self_;
  out.datagram.body = std::move(body);
  out.sfl = info.sfl;
  out.was_secret = info.was_secret;
  out.suite = info.suite;
  return out;
}

void FbsEndpoint::rekey(const FlowAttributes& attrs) {
  if (config_.combined_fst_tfkc) {
    const std::size_t idx =
        cache_index(config_.cache_hash, attrs.encode(), combined_.size());
    CombinedEntry& e = combined_[idx];
    if (e.valid && e.attrs == attrs) e.valid = false;
    return;
  }
  // Split mode: terminate the flow in the FAM; the next datagram maps to a
  // fresh sfl, whose key misses in the TFKC and is derived anew.
  policy_->expire_flow(attrs);
}

std::size_t FbsEndpoint::sweep() { return policy_->sweep(clock_.now()); }

void FbsEndpoint::clear_soft_state() {
  for (CombinedEntry& e : combined_) e.valid = false;
  tfkc_.clear();
  rfkc_.clear();
  policy_->clear();
  // A restarted receiver has no memory of recently seen MACs; the strict
  // replay extension degrades to the paper's window-only check (its design
  // guarantee: losing the cache is never worse than not having it).
  freshness_.clear();
}

}  // namespace fbs::core
