#include "fbs/engine.hpp"

#include <cassert>
#include <chrono>
#include <mutex>

#include "crypto/fused.hpp"
#include "util/flow_hash.hpp"

namespace fbs::core {

namespace {

/// The MAC's non-payload input: flags byte, suite byte, 4-byte confounder,
/// 4-byte timestamp (Section 5.2 keys the MAC on Kf over confounder,
/// timestamp and payload; we additionally cover the flags and algorithm
/// bytes we carry, because neither participates in any other computation
/// when the body is plaintext -- fuzzing found that an on-path attacker
/// could rewrite the cipher nibble of a non-secret datagram and still have
/// it accepted). Written into a stack buffer on the datagram path.
constexpr std::size_t kMacPrefixSize = 10;

void mac_prefix_into(std::uint8_t flags, std::uint8_t suite,
                     std::uint32_t confounder, std::uint32_t timestamp,
                     std::uint8_t out[kMacPrefixSize]) {
  out[0] = flags;
  out[1] = suite;
  for (int i = 0; i < 4; ++i) {
    out[2 + i] = static_cast<std::uint8_t>(confounder >> (24 - 8 * i));
    out[6 + i] = static_cast<std::uint8_t>(timestamp >> (24 - 8 * i));
  }
}

/// Section 7.2: the 32-bit confounder is duplicated into the 64-bit DES IV.
std::uint64_t confounder_iv(std::uint32_t confounder) {
  return static_cast<std::uint64_t>(confounder) << 32 | confounder;
}

/// Stack room for any MAC tag we produce (MD5 = 16, SHA-1 = 20).
constexpr std::size_t kMaxMacSize = 64;

/// Domain separation for the two shard-selection hash consumers. Send-side
/// shards key on the encoded FlowAttributes; receive-side shards key on
/// (source principal address, sfl) -- both are per-flow constants, so every
/// datagram of a flow lands on the same shard.
constexpr std::uint64_t kSendShardSeed = 0x5342'5353'454E'4421ull;
constexpr std::uint64_t kRecvShardSeed = 0x5342'5352'4543'5621ull;

void accumulate(SendStats& into, const SendStats& s) {
  into.datagrams += s.datagrams;
  into.encrypted += s.encrypted;
  into.flow_keys_derived += s.flow_keys_derived;
  into.key_unavailable += s.key_unavailable;
  into.lifetime_rekeys += s.lifetime_rekeys;
}

void accumulate(ReceiveStats& into, const ReceiveStats& s) {
  into.accepted += s.accepted;
  into.rejected_malformed += s.rejected_malformed;
  into.rejected_stale += s.rejected_stale;
  into.rejected_replay += s.rejected_replay;
  into.rejected_unknown_peer += s.rejected_unknown_peer;
  into.rejected_bad_mac += s.rejected_bad_mac;
  into.rejected_decrypt += s.rejected_decrypt;
  into.flow_keys_derived += s.flow_keys_derived;
  for (std::size_t i = 0; i < kReceiveErrorKinds; ++i)
    into.by_kind[i] += s.by_kind[i];
}

void accumulate(CacheStats& into, const CacheStats& s) {
  into.hits += s.hits;
  into.cold_misses += s.cold_misses;
  into.capacity_misses += s.capacity_misses;
  into.collision_misses += s.collision_misses;
}

void accumulate(FreshnessChecker::Stats& into,
                const FreshnessChecker::Stats& s) {
  into.fresh += s.fresh;
  into.stale += s.stale;
  into.replays += s.replays;
}

void accumulate(FamStats& into, const FamStats& s) {
  into.datagrams += s.datagrams;
  into.flows_created += s.flows_created;
  into.mapper_hits += s.mapper_hits;
  into.hash_evictions += s.hash_evictions;
  into.mapper_expirations += s.mapper_expirations;
  into.sweeper_expirations += s.sweeper_expirations;
}

}  // namespace

const char* to_string(ReceiveError e) {
  switch (e) {
    case ReceiveError::kMalformed: return "malformed";
    case ReceiveError::kStale: return "stale";
    case ReceiveError::kReplay: return "replay";
    case ReceiveError::kUnknownPeer: return "unknown-peer";
    case ReceiveError::kBadMac: return "bad-mac";
    case ReceiveError::kDecryptFailed: return "decrypt-failed";
  }
  return "?";
}

FbsEndpoint::FbsEndpoint(Principal self, const FbsConfig& config,
                         KeyManager& keys, const util::Clock& clock,
                         util::RandomSource& rng)
    : self_(std::move(self)),
      config_(config),
      keys_(keys),
      clock_(clock),
      sfl_alloc_(rng) {
  config_.shards = config_.shards == 0 ? 1 : config_.shards;
  // The Section 7.2 merged FST+TFKC assumes the FST is the small
  // direct-mapped array; the budgeted megaflow table replaces both halves
  // of that bargain, so the split path is forced on.
  if (config_.max_flows_per_shard != 0) config_.combined_fst_tfkc = false;
  // Every Mac the receive path could consult, built once. Mac instances are
  // immutable (make_context is const) so all domains and workers share
  // these; the mutable per-flow MacContexts live in domain caches under the
  // domain lock.
  for (const auto alg :
       {crypto::MacAlgorithm::kKeyedMd5, crypto::MacAlgorithm::kHmacMd5,
        crypto::MacAlgorithm::kKeyedSha1, crypto::MacAlgorithm::kHmacSha1,
        crypto::MacAlgorithm::kNull}) {
    suite_macs_[static_cast<std::size_t>(alg)] = crypto::make_mac(alg);
  }
  domains_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    domains_.push_back(std::make_unique<FlowDomain>(config_, clock_,
                                                    sfl_alloc_,
                                                    rng.next_u64()));
}

const crypto::Mac& FbsEndpoint::suite_mac(crypto::MacAlgorithm alg) const {
  const std::size_t idx = static_cast<std::size_t>(alg);
  assert(idx < suite_macs_.size() && suite_macs_[idx] != nullptr);
  return *suite_macs_[idx];
}

void FbsEndpoint::cache_key_into(Sfl sfl, const Principal& a,
                                 const Principal& b, util::Bytes& out) {
  // TFKC index is (sfl, D, S); RFKC is (sfl, S, D). Including the local
  // principal covers multi-homed hosts (footnote 7).
  out.clear();
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(sfl >> (8 * i)));
  out.insert(out.end(), a.address.begin(), a.address.end());
  out.insert(out.end(), b.address.begin(), b.address.end());
}

std::size_t FbsEndpoint::send_shard_of(const FlowAttributes& attrs) const {
  util::Bytes enc;
  attrs.encode_into(enc);
  return shard_index(util::flow_hash64(enc, kSendShardSeed));
}

std::size_t FbsEndpoint::recv_shard_of(const Principal& source,
                                       Sfl sfl) const {
  return shard_index(util::flow_hash_combine(
      util::flow_hash64(source.address, kRecvShardSeed), sfl));
}

std::size_t FbsEndpoint::recv_shard_of_wire(const Principal& source,
                                            util::BytesView wire) const {
  const auto header = FbsHeaderView::parse(wire);
  return recv_shard_of(source, header ? header->sfl : 0);
}

bool FbsEndpoint::key_worn_out(const CombinedFlowEntry& e,
                               util::TimeUs now) const {
  if (config_.rekey_after_datagrams &&
      e.datagrams >= config_.rekey_after_datagrams)
    return true;
  if (config_.rekey_after_bytes && e.bytes >= config_.rekey_after_bytes)
    return true;
  if (config_.rekey_after_age && now - e.created >= config_.rekey_after_age)
    return true;
  return false;
}

std::optional<std::pair<Sfl, FlowCryptoContext*>> FbsEndpoint::outgoing_flow(
    FlowDomain& dom, WorkContext& ctx, const Datagram& d) {
  const util::TimeUs now = clock_.now();

  if (config_.combined_fst_tfkc) {
    // Section 7.2 fast path: one CRC-32 probe resolves both the flow
    // mapping and the flow key; the sweeper is absorbed into the mapper.
    // ctx.attrs already holds the encoded attributes (the caller encoded
    // them to pick this domain).
    const std::size_t idx =
        cache_index(config_.cache_hash, ctx.attrs, dom.combined.size());
    CombinedFlowEntry& e = dom.combined[idx];
    if (e.valid && e.attrs == d.attrs &&
        !flow_expired(e.last, now, config_.flow_threshold)) {
      if (key_worn_out(e, now)) {
        ++dom.send_stats.lifetime_rekeys;
        e.valid = false;  // retire the worn key; fall through to a new flow
      } else {
        e.last = now;
        ++e.datagrams;
        e.bytes += d.body.size();
        return std::make_pair(e.sfl, &e.ctx);
      }
    }
    const auto master = keys_.master_key(d.destination);
    if (!master) return std::nullopt;
    const Sfl sfl = sfl_alloc_.allocate();
    ++dom.send_stats.flow_keys_derived;
    auto derive_timer = dom.tracer.start(obs::Stage::kSendKeyDerive);
    util::Bytes key =
        derive_flow_key(ctx.kdf_hash, sfl, *master, self_, d.destination);
    FlowCryptoContext fctx = make_flow_crypto_context(
        std::move(key), config_.suite, suite_mac(config_.suite.mac));
    derive_timer.finish();
    e.valid = true;
    e.attrs = d.attrs;
    e.sfl = sfl;
    e.ctx = std::move(fctx);
    e.created = e.last = now;
    e.datagrams = 1;
    e.bytes = d.body.size();
    return std::make_pair(sfl, &e.ctx);
  }

  // Split path (Figures 4 and 6): FAM classification, then TFKC. The
  // lifetime policy module consults the FAM's entry and retires worn flows.
  if (const FlowStateEntry* entry = dom.policy->find(d.attrs)) {
    const bool worn =
        (config_.rekey_after_datagrams &&
         entry->datagrams >= config_.rekey_after_datagrams) ||
        (config_.rekey_after_bytes &&
         entry->bytes >= config_.rekey_after_bytes) ||
        (config_.rekey_after_age &&
         now - entry->created >= config_.rekey_after_age);
    if (worn) {
      ++dom.send_stats.lifetime_rekeys;
      dom.policy->expire_flow(d.attrs);
    }
  }
  const MapResult mapping = dom.policy->map(d, now);
  cache_key_into(mapping.sfl, d.destination, self_, ctx.key);
  if (auto* cached = dom.tfkc.lookup(ctx.key))
    return std::make_pair(mapping.sfl, cached);
  const auto master = keys_.master_key(d.destination);
  if (!master) return std::nullopt;
  ++dom.send_stats.flow_keys_derived;
  auto derive_timer = dom.tracer.start(obs::Stage::kSendKeyDerive);
  util::Bytes key = derive_flow_key(ctx.kdf_hash, mapping.sfl, *master, self_,
                                    d.destination);
  FlowCryptoContext fctx = make_flow_crypto_context(
      std::move(key), config_.suite, suite_mac(config_.suite.mac));
  derive_timer.finish();
  return std::make_pair(mapping.sfl,
                        dom.tfkc.insert(ctx.key, std::move(fctx)));
}

bool FbsEndpoint::protect_into(WorkContext& ctx, const Datagram& d,
                               bool secret, util::Bytes& wire_out) {
  wire_out.clear();
  d.attrs.encode_into(ctx.attrs);
  FlowDomain& dom =
      *domains_[shard_index(util::flow_hash64(ctx.attrs, kSendShardSeed))];
  // One lock for the whole datagram: flow resolution, key wear-out
  // accounting, confounder draw, MAC/cipher (the per-flow MacContext is
  // mutable state), and stats all belong to this domain.
  std::lock_guard<std::mutex> lock(dom.mu);

  auto classify_timer = dom.tracer.start(obs::Stage::kSendClassify);
  const auto flow = outgoing_flow(dom, ctx, d);
  classify_timer.finish();
  if (!flow) {
    ++dom.send_stats.key_unavailable;
    return false;
  }
  const auto& [sfl, fctx] = *flow;

  FbsHeaderView header;
  header.suite = config_.suite;
  header.sfl = sfl;
  header.confounder = dom.confounder_gen.step32();
  header.timestamp_minutes = util::to_header_minutes(clock_.now());
  header.secret =
      secret && config_.suite.cipher != crypto::CipherAlgorithm::kNone;

  std::uint8_t prefix[kMacPrefixSize];
  mac_prefix_into(header.flags_byte(), header.suite_byte(),
                  header.confounder, header.timestamp_minutes, prefix);
  std::uint8_t mac_buf[kMaxMacSize];
  const std::size_t mac_n = fctx->mac->mac_size();

  util::BytesView body;
  if (header.secret &&
      config_.suite.mac == crypto::MacAlgorithm::kKeyedMd5 &&
      config_.suite.cipher == crypto::CipherAlgorithm::kDesCbc) {
    // Section 5.3 single-pass optimization: MAC and encryption in one loop
    // over the payload (bit-identical to the two-pass path).
    auto fused_timer = dom.tracer.start(obs::Stage::kSendFused);
    crypto::fused_seal_into(*fctx->des, confounder_iv(header.confounder),
                            *fctx->mac, {prefix, kMacPrefixSize}, d.body,
                            mac_buf, ctx.body);
    body = ctx.body;
    ++dom.send_stats.encrypted;
  } else {
    {
      auto mac_timer = dom.tracer.start(obs::Stage::kSendMac);
      fctx->mac->begin();
      fctx->mac->update({prefix, kMacPrefixSize});
      fctx->mac->update(d.body);
      fctx->mac->finish_into(mac_buf);
    }
    if (header.secret) {
      auto cipher_timer = dom.tracer.start(obs::Stage::kSendCipher);
      const auto mode = *crypto::cipher_mode(config_.suite.cipher);
      const std::uint64_t iv = confounder_iv(header.confounder);
      if (fctx->des3)
        crypto::encrypt_into(*fctx->des3, mode, iv, d.body, ctx.body);
      else
        crypto::encrypt_into(*fctx->des, mode, iv, d.body, ctx.body);
      body = ctx.body;
      ++dom.send_stats.encrypted;
    } else {
      body = d.body;
    }
  }
  header.mac = {mac_buf, mac_n};

  ++dom.send_stats.datagrams;
  auto wire_timer = dom.tracer.start(obs::Stage::kSendWire);
  wire_out.reserve(FbsHeader::kFixedSize + mac_n + body.size());
  header.serialize_into(wire_out);
  wire_out.insert(wire_out.end(), body.begin(), body.end());
  return true;
}

bool FbsEndpoint::protect_into(const Datagram& d, bool secret,
                               util::Bytes& wire_out) {
  return protect_into(default_ctx_, d, secret, wire_out);
}

std::optional<util::Bytes> FbsEndpoint::protect(const Datagram& d,
                                                bool secret) {
  util::Bytes wire;
  if (!protect_into(d, secret, wire)) return std::nullopt;
  return wire;
}

FlowCryptoContext* FbsEndpoint::incoming_flow_context(
    FlowDomain& dom, WorkContext& ctx, const Principal& source, Sfl sfl,
    crypto::AlgorithmSuite suite) {
  cache_key_into(sfl, source, self_, ctx.key);
  if (auto* cached = dom.rfkc.lookup(ctx.key)) {
    // A receiver can see the same sfl under a different header suite; the
    // rare mismatch rebuilds the contexts from the cached key.
    ensure_suite(*cached, suite, suite_mac(suite.mac));
    return cached;
  }
  const auto master = keys_.master_key(source);
  if (!master) return nullptr;
  ++dom.receive_stats.flow_keys_derived;
  util::Bytes key = derive_flow_key(ctx.kdf_hash, sfl, *master, source, self_);
  return dom.rfkc.insert(
      ctx.key,
      make_flow_crypto_context(std::move(key), suite, suite_mac(suite.mac)));
}

ReceiveError FbsEndpoint::reject(FlowDomain& dom, ReceiveError e) {
  ReceiveStats& rs = dom.receive_stats;
  ++rs.by_kind[static_cast<std::size_t>(e)];
  switch (e) {
    case ReceiveError::kMalformed: ++rs.rejected_malformed; break;
    case ReceiveError::kStale: ++rs.rejected_stale; break;
    case ReceiveError::kReplay: ++rs.rejected_replay; break;
    case ReceiveError::kUnknownPeer: ++rs.rejected_unknown_peer; break;
    case ReceiveError::kBadMac: ++rs.rejected_bad_mac; break;
    case ReceiveError::kDecryptFailed: ++rs.rejected_decrypt; break;
  }
  return e;
}

ReceiveIntoOutcome FbsEndpoint::unprotect_item_locked(
    FlowDomain& dom, WorkContext& ctx, const Principal& source,
    const FbsHeaderView& header, util::Bytes& body_out) {
  // The header's algorithm field is attacker-controlled, and the NOP suite's
  // "MAC" is a public constant: honoring a wire-chosen kNull suite would let
  // anyone forge datagrams carrying sixteen zero bytes as the tag. Only an
  // endpoint explicitly configured for NOP measurement runs may accept it.
  if (header.suite.mac == crypto::MacAlgorithm::kNull &&
      config_.suite.mac != crypto::MacAlgorithm::kNull)
    return reject(dom, ReceiveError::kMalformed);

  // (R3-4) freshness before any cryptography: stale datagrams cost nothing.
  // The check is read-only; the seen-MAC cache is only committed to after
  // the MAC verifies, so a forged body cannot poison it (see replay.hpp).
  auto fresh_timer = dom.tracer.start(obs::Stage::kRecvFreshness);
  const auto verdict =
      dom.freshness.check(header.timestamp_minutes, header.mac);
  fresh_timer.finish();
  switch (verdict) {
    case FreshnessChecker::Verdict::kFresh:
      break;
    case FreshnessChecker::Verdict::kStale:
      return reject(dom, ReceiveError::kStale);
    case FreshnessChecker::Verdict::kReplay:
      return reject(dom, ReceiveError::kReplay);
  }

  // (R5-6) recover the flow's crypto context from the sfl (RFKC-cached:
  // a hit returns the ready DES schedule and keyed MAC state).
  auto key_timer = dom.tracer.start(obs::Stage::kRecvKey);
  FlowCryptoContext* fctx =
      incoming_flow_context(dom, ctx, source, header.sfl, header.suite);
  key_timer.finish();
  if (!fctx) return reject(dom, ReceiveError::kUnknownPeer);

  std::uint8_t prefix[kMacPrefixSize];
  mac_prefix_into(header.flags_byte(), header.suite_byte(),
                  header.confounder, header.timestamp_minutes, prefix);
  std::uint8_t mac_buf[kMaxMacSize];
  const std::size_t mac_n = fctx->mac->mac_size();

  // (R10-11 first for secret datagrams -- see the header-comment deviation
  // note): recover the plaintext the MAC was computed over, computing the
  // expected MAC in the same pass where the suite allows it.
  if (header.secret) {
    const auto mode = crypto::cipher_mode(header.suite.cipher);
    if (!mode || (!fctx->des && !fctx->des3))
      return reject(dom, ReceiveError::kMalformed);
    const std::uint64_t iv = confounder_iv(header.confounder);
    if (fctx->des && fctx->bitslice && config_.bitslice_crypto &&
        header.suite.cipher == crypto::CipherAlgorithm::kDesCbc &&
        !header.body.empty() &&
        header.body.size() % crypto::Des::kBlockSize == 0 &&
        header.body.size() / crypto::Des::kBlockSize >=
            crypto::CryptoBatch::kScalarThresholdBlocks) {
      // Single-datagram bitslice path: CBC decrypt is block-parallel, so a
      // large body splits its own blocks across the 64 lanes (a 1408-byte
      // body is 176 blocks -- nearly three full passes).
      auto batch_timer = dom.tracer.start(obs::Stage::kRecvBatchCrypto);
      body_out.resize(header.body.size());
      const crypto::CbcOpenJob job{&*fctx->des, &*fctx->bitslice, iv,
                                   header.body, body_out.data()};
      ctx.batch.open_cbc({&job, 1});
      batch_timer.finish();
      if (!crypto::detail::pkcs7_unpad_in_place(body_out))
        return reject(dom, ReceiveError::kDecryptFailed);
      auto mac_timer = dom.tracer.start(obs::Stage::kRecvMac);
      fctx->mac->begin();
      fctx->mac->update({prefix, kMacPrefixSize});
      fctx->mac->update(body_out);
      fctx->mac->finish_into(mac_buf);
    } else if (header.suite.mac == crypto::MacAlgorithm::kKeyedMd5 &&
               header.suite.cipher == crypto::CipherAlgorithm::kDesCbc) {
      auto fused_timer = dom.tracer.start(obs::Stage::kRecvFused);
      const bool ok = crypto::fused_open_into(
          *fctx->des, iv, *fctx->mac, {prefix, kMacPrefixSize}, header.body,
          mac_buf, body_out);
      fused_timer.finish();
      if (!ok) return reject(dom, ReceiveError::kDecryptFailed);
    } else {
      auto cipher_timer = dom.tracer.start(obs::Stage::kRecvCipher);
      const bool ok =
          fctx->des3 ? crypto::decrypt_into(*fctx->des3, *mode, iv,
                                            header.body, body_out)
                     : crypto::decrypt_into(*fctx->des, *mode, iv,
                                            header.body, body_out);
      cipher_timer.finish();
      if (!ok) return reject(dom, ReceiveError::kDecryptFailed);
      auto mac_timer = dom.tracer.start(obs::Stage::kRecvMac);
      fctx->mac->begin();
      fctx->mac->update({prefix, kMacPrefixSize});
      fctx->mac->update(body_out);
      fctx->mac->finish_into(mac_buf);
    }
  } else {
    body_out.assign(header.body.begin(), header.body.end());
    auto mac_timer = dom.tracer.start(obs::Stage::kRecvMac);
    fctx->mac->begin();
    fctx->mac->update({prefix, kMacPrefixSize});
    fctx->mac->update(body_out);
    fctx->mac->finish_into(mac_buf);
  }

  // (R7-9) the MAC covers flags | suite | confounder | timestamp | plaintext
  // body: every header bit is either authenticated here or validated by
  // parse (version, reserved flags) or by key selection (sfl).
  if (!util::ct_equal({mac_buf, mac_n}, header.mac))
    return reject(dom, ReceiveError::kBadMac);

  // Only a verified datagram may enter the strict-replay seen-set. Still
  // inside this flow's critical section: check+commit is atomic per shard.
  dom.freshness.commit(header.timestamp_minutes, header.mac);

  ++dom.receive_stats.accepted;
  return ReceivedInfo{header.sfl, header.secret, header.suite};
}

ReceiveIntoOutcome FbsEndpoint::unprotect_into(WorkContext& ctx,
                                               const Principal& source,
                                               util::BytesView wire,
                                               util::Bytes& body_out) {
  // Parse before taking any lock: it reads only the wire, and the sfl it
  // yields picks the owning domain. The parse duration is measured here and
  // recorded under the domain lock (tracer recorders are domain state).
  const bool tracing = config_.trace_stages;
  std::chrono::steady_clock::time_point parse_start;
  if (tracing) parse_start = std::chrono::steady_clock::now();
  const auto header = FbsHeaderView::parse(wire);
  double parse_ns = 0;
  if (tracing)
    parse_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - parse_start)
            .count());

  // Unparseable wires carry no sfl; they land on the source's sfl-0 domain
  // purely so the malformed rejection is counted somewhere deterministic.
  FlowDomain& dom =
      *domains_[recv_shard_of(source, header ? header->sfl : 0)];
  // From here to accept/reject: one critical section per datagram. In
  // particular the freshness check and the post-verification commit
  // execute atomically with respect to any other datagram of this flow, so
  // a duplicate racing in from another worker cannot slip between them.
  std::lock_guard<std::mutex> lock(dom.mu);
  if (tracing) dom.tracer.record(obs::Stage::kRecvParse, parse_ns);
  if (!header) return reject(dom, ReceiveError::kMalformed);
  return unprotect_item_locked(dom, ctx, source, *header, body_out);
}

// Burst chunk size: deliberately NOT tied to CryptoBatch::kLanes. The chunk
// bounds a family of stack arrays below (the FlowCryptoContext snapshots
// alone are ~1 KiB each), so it must stay modest even when the bitslice
// engine widens; 64 datagrams of a few blocks each already fill the wide
// passes, since CBC decrypt splits datagrams across lanes.
constexpr std::size_t kBurstChunk = 64;

void FbsEndpoint::unprotect_burst_into(WorkContext& ctx,
                                       std::span<ReceiveBurstItem> items) {
  constexpr std::size_t kMax = kBurstChunk;
  for (std::size_t off = 0; off < items.size(); off += kMax)
    unprotect_burst_chunk(
        ctx, items.subspan(off, std::min(kMax, items.size() - off)));
}

void FbsEndpoint::unprotect_burst_chunk(WorkContext& ctx,
                                        std::span<ReceiveBurstItem> items) {
  constexpr std::size_t kMax = kBurstChunk;
  const std::size_t n = items.size();
  std::optional<FbsHeaderView> headers[kMax];
  std::size_t shard[kMax];
  bool grouped[kMax] = {};
  for (std::size_t i = 0; i < n; ++i) {
    headers[i] = FbsHeaderView::parse(items[i].wire);
    shard[i] = recv_shard_of(*items[i].source,
                             headers[i] ? headers[i]->sfl : 0);
  }

  for (std::size_t first = 0; first < n; ++first) {
    if (grouped[first]) continue;
    FlowDomain& dom = *domains_[shard[first]];
    // One critical section for the whole same-shard group (the pipeline
    // feeds whole bursts from one shard's ring, so this is normally one
    // lock per burst): freshness check ... batch decrypt ... MAC verify
    // ... replay commit all execute atomically per shard, exactly as the
    // per-item path does -- just amortized.
    std::lock_guard<std::mutex> lock(dom.mu);

    // Phase A, in submission order: header checks, freshness, flow-key
    // resolution. Items the batch engine cannot serve (plaintext bodies,
    // 3DES, stream modes, bad lengths, bitslice disabled) run the scalar
    // path right here -- their context pointer is consumed before any later
    // item's cache insert could evict it. Eligible items park only their
    // index: the pointer is re-resolved in phase A2 once all inserts are
    // done.
    std::size_t pend[kMax];
    std::size_t npend = 0;
    for (std::size_t j = first; j < n; ++j) {
      if (grouped[j] || shard[j] != shard[first]) continue;
      grouped[j] = true;
      ReceiveBurstItem& it = items[j];
      if (!headers[j]) {
        it.outcome = reject(dom, ReceiveError::kMalformed);
        continue;
      }
      const FbsHeaderView& h = *headers[j];
      const bool eligible =
          config_.bitslice_crypto && h.secret &&
          h.suite.cipher == crypto::CipherAlgorithm::kDesCbc &&
          !h.body.empty() &&
          h.body.size() % crypto::Des::kBlockSize == 0;
      if (!eligible) {
        it.outcome =
            unprotect_item_locked(dom, ctx, *it.source, h, *it.body_out);
        continue;
      }
      if (h.suite.mac == crypto::MacAlgorithm::kNull &&
          config_.suite.mac != crypto::MacAlgorithm::kNull) {
        it.outcome = reject(dom, ReceiveError::kMalformed);
        continue;
      }
      auto fresh_timer = dom.tracer.start(obs::Stage::kRecvFreshness);
      const auto verdict = dom.freshness.check(h.timestamp_minutes, h.mac);
      fresh_timer.finish();
      if (verdict == FreshnessChecker::Verdict::kStale) {
        it.outcome = reject(dom, ReceiveError::kStale);
        continue;
      }
      if (verdict == FreshnessChecker::Verdict::kReplay) {
        it.outcome = reject(dom, ReceiveError::kReplay);
        continue;
      }
      auto key_timer = dom.tracer.start(obs::Stage::kRecvKey);
      FlowCryptoContext* fctx =
          incoming_flow_context(dom, ctx, *it.source, h.sfl, h.suite);
      key_timer.finish();
      if (!fctx) {
        it.outcome = reject(dom, ReceiveError::kUnknownPeer);
        continue;
      }
      pend[npend++] = j;
    }

    // Phase A2: re-resolve each pending context with a peek -- no insert
    // can evict from here on, so these pointers stay valid through the
    // batch. An entry that a sibling flow's derive evicted mid-burst (set
    // collision) is rebuilt into a local context instead of re-inserted.
    std::optional<FlowCryptoContext> local[kMax];
    crypto::CbcOpenJob jobs[kMax];
    struct Live {
      std::size_t item;
      FlowCryptoContext* fctx;
    };
    Live live[kMax];
    std::size_t njob = 0;
    for (std::size_t k = 0; k < npend; ++k) {
      const std::size_t j = pend[k];
      ReceiveBurstItem& it = items[j];
      const FbsHeaderView& h = *headers[j];
      cache_key_into(h.sfl, *it.source, self_, ctx.key);
      auto* fctx = const_cast<FlowCryptoContext*>(dom.rfkc.peek(ctx.key));
      if (fctx) {
        ensure_suite(*fctx, h.suite, suite_mac(h.suite.mac));
      } else {
        const auto master = keys_.master_key(*it.source);
        if (!master) {
          it.outcome = reject(dom, ReceiveError::kUnknownPeer);
          continue;
        }
        util::Bytes key =
            derive_flow_key(ctx.kdf_hash, h.sfl, *master, *it.source, self_);
        local[j].emplace(make_flow_crypto_context(std::move(key), h.suite,
                                                  suite_mac(h.suite.mac)));
        fctx = &*local[j];
      }
      if (!fctx->des || !fctx->bitslice) {
        it.outcome = reject(dom, ReceiveError::kMalformed);
        continue;
      }
      it.body_out->resize(h.body.size());
      jobs[njob] = crypto::CbcOpenJob{&*fctx->des, &*fctx->bitslice,
                                      confounder_iv(h.confounder), h.body,
                                      it.body_out->data()};
      live[njob] = Live{j, fctx};
      ++njob;
    }

    // Phase B: one cross-datagram bitsliced decrypt for the whole group,
    // mixed flow keys included (per-lane key schedules).
    if (njob > 0) {
      auto batch_timer = dom.tracer.start(obs::Stage::kRecvBatchCrypto);
      ctx.batch.open_cbc({jobs, njob});
      batch_timer.finish();
    }

    // Phases C-D, in submission order: padding check, MAC over the
    // recovered plaintext, constant-time compare, replay commit.
    for (std::size_t k = 0; k < njob; ++k) {
      const std::size_t j = live[k].item;
      ReceiveBurstItem& it = items[j];
      const FbsHeaderView& h = *headers[j];
      FlowCryptoContext* fctx = live[k].fctx;
      util::Bytes& body = *it.body_out;
      if (!crypto::detail::pkcs7_unpad_in_place(body)) {
        it.outcome = reject(dom, ReceiveError::kDecryptFailed);
        continue;
      }
      std::uint8_t prefix[kMacPrefixSize];
      mac_prefix_into(h.flags_byte(), h.suite_byte(), h.confounder,
                      h.timestamp_minutes, prefix);
      std::uint8_t mac_buf[kMaxMacSize];
      const std::size_t mac_n = fctx->mac->mac_size();
      {
        auto mac_timer = dom.tracer.start(obs::Stage::kRecvMac);
        fctx->mac->begin();
        fctx->mac->update({prefix, kMacPrefixSize});
        fctx->mac->update(body);
        fctx->mac->finish_into(mac_buf);
      }
      if (!util::ct_equal({mac_buf, mac_n}, h.mac)) {
        it.outcome = reject(dom, ReceiveError::kBadMac);
        continue;
      }
      // Every item of this group passed check() before any committed; the
      // non-counting probe catches the second copy of an intra-burst
      // duplicate before it can double-commit.
      if (dom.freshness.seen(h.timestamp_minutes, h.mac)) {
        it.outcome = reject(dom, ReceiveError::kReplay);
        continue;
      }
      dom.freshness.commit(h.timestamp_minutes, h.mac);
      ++dom.receive_stats.accepted;
      it.outcome = ReceivedInfo{h.sfl, h.secret, h.suite};
    }
  }
}

ReceiveIntoOutcome FbsEndpoint::unprotect_into(const Principal& source,
                                               util::BytesView wire,
                                               util::Bytes& body_out) {
  return unprotect_into(default_ctx_, source, wire, body_out);
}

ReceiveOutcome FbsEndpoint::unprotect(const Principal& source,
                                      util::BytesView wire) {
  util::Bytes body;
  const ReceiveIntoOutcome outcome = unprotect_into(source, wire, body);
  if (const auto* err = std::get_if<ReceiveError>(&outcome)) return *err;
  const auto& info = std::get<ReceivedInfo>(outcome);
  ReceivedDatagram out;
  out.datagram.source = source;
  out.datagram.destination = self_;
  out.datagram.body = std::move(body);
  out.sfl = info.sfl;
  out.was_secret = info.was_secret;
  out.suite = info.suite;
  return out;
}

void FbsEndpoint::rekey(const FlowAttributes& attrs) {
  FlowDomain& dom = *domains_[send_shard_of(attrs)];
  std::lock_guard<std::mutex> lock(dom.mu);
  if (config_.combined_fst_tfkc) {
    const std::size_t idx =
        cache_index(config_.cache_hash, attrs.encode(), dom.combined.size());
    CombinedFlowEntry& e = dom.combined[idx];
    if (e.valid && e.attrs == attrs) e.valid = false;
    return;
  }
  // Split mode: terminate the flow in the FAM; the next datagram maps to a
  // fresh sfl, whose key misses in the TFKC and is derived anew.
  dom.policy->expire_flow(attrs);
}

std::size_t FbsEndpoint::sweep() {
  const util::TimeUs now = clock_.now();
  std::size_t expired = 0;
  for (const auto& dom : domains_) {
    std::lock_guard<std::mutex> lock(dom->mu);
    expired += dom->policy->sweep(now);
  }
  return expired;
}

void FbsEndpoint::clear_soft_state() {
  for (const auto& dom : domains_) {
    std::lock_guard<std::mutex> lock(dom->mu);
    for (CombinedFlowEntry& e : dom->combined) e.valid = false;
    dom->tfkc.clear();
    dom->rfkc.clear();
    dom->policy->clear();
    // A restarted receiver has no memory of recently seen MACs; the strict
    // replay extension degrades to the paper's window-only check (its design
    // guarantee: losing the cache is never worse than not having it).
    dom->freshness.clear();
  }
}

const SendStats& FbsEndpoint::send_stats() const {
  agg_send_ = SendStats{};
  for (const auto& dom : domains_) {
    std::lock_guard<std::mutex> lock(dom->mu);
    accumulate(agg_send_, dom->send_stats);
  }
  return agg_send_;
}

const ReceiveStats& FbsEndpoint::receive_stats() const {
  agg_recv_ = ReceiveStats{};
  for (const auto& dom : domains_) {
    std::lock_guard<std::mutex> lock(dom->mu);
    accumulate(agg_recv_, dom->receive_stats);
  }
  return agg_recv_;
}

const CacheStats& FbsEndpoint::tfkc_stats() const {
  agg_tfkc_ = CacheStats{};
  for (const auto& dom : domains_) {
    std::lock_guard<std::mutex> lock(dom->mu);
    accumulate(agg_tfkc_, dom->tfkc.stats());
  }
  return agg_tfkc_;
}

const CacheStats& FbsEndpoint::rfkc_stats() const {
  agg_rfkc_ = CacheStats{};
  for (const auto& dom : domains_) {
    std::lock_guard<std::mutex> lock(dom->mu);
    accumulate(agg_rfkc_, dom->rfkc.stats());
  }
  return agg_rfkc_;
}

const FreshnessChecker::Stats& FbsEndpoint::freshness_stats() const {
  agg_freshness_ = FreshnessChecker::Stats{};
  for (const auto& dom : domains_) {
    std::lock_guard<std::mutex> lock(dom->mu);
    accumulate(agg_freshness_, dom->freshness.stats());
  }
  return agg_freshness_;
}

const FamStats& FbsEndpoint::fam_stats() const {
  agg_fam_ = FamStats{};
  for (const auto& dom : domains_) {
    std::lock_guard<std::mutex> lock(dom->mu);
    accumulate(agg_fam_, dom->policy->stats());
  }
  return agg_fam_;
}

const MegaflowStats* FbsEndpoint::megaflow_stats() const {
  agg_mega_ = MegaflowStats{};
  bool any = false;
  for (const auto& dom : domains_) {
    std::lock_guard<std::mutex> lock(dom->mu);
    const MegaflowStats* m = dom->policy->mega_stats();
    if (!m) continue;
    any = true;
    agg_mega_.budget_evictions += m->budget_evictions;
    agg_mega_.wheel_cascades += m->wheel_cascades;
    agg_mega_.wheel_fires += m->wheel_fires;
    agg_mega_.sweep_touched += m->sweep_touched;
    agg_mega_.map_rehashes += m->map_rehashes;
    agg_mega_.slab_grows += m->slab_grows;
    agg_mega_.live_flows += m->live_flows;
    agg_mega_.peak_live_flows += m->peak_live_flows;
    if (m->map_load_factor > agg_mega_.map_load_factor)
      agg_mega_.map_load_factor = m->map_load_factor;
    agg_mega_.resident_bytes += m->resident_bytes;
  }
  return any ? &agg_mega_ : nullptr;
}

}  // namespace fbs::core
