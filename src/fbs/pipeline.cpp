#include "fbs/pipeline.hpp"

#include <chrono>
#include <thread>

#if defined(__linux__)
#include <time.h>
#endif

namespace fbs::core {

namespace {

/// CPU time consumed by the calling thread. This is what makes per-worker
/// busy accounting meaningful on a machine with fewer cores than workers:
/// wall time would charge a descheduled worker for its neighbors' work.
std::uint64_t thread_cpu_ns() {
#if defined(__linux__)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
#endif
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

DatagramPipeline::DatagramPipeline(FbsEndpoint& endpoint,
                                   const PipelineConfig& config,
                                   RejectHook on_reject)
    : endpoint_(endpoint),
      config_(config),
      on_reject_(std::move(on_reject)),
      egress_(config.egress_capacity) {
  const std::size_t shards = endpoint_.shard_count();
  std::size_t workers = config_.workers == 0 ? 1 : config_.workers;
  if (workers > shards) workers = shards;
  config_.workers = workers;

  ingress_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    ingress_.push_back(std::make_unique<util::BoundedMpscRing<Item>>(
        config_.ingress_capacity));

  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
    for (std::size_t s = w; s < shards; s += workers)
      workers_[w]->shards.push_back(s);
  }

  pool_.set_wake([this] {
    for (auto& wk : workers_) {
      // Empty critical section before notify: a worker between its
      // predicate check and its wait cannot miss the signal.
      { std::lock_guard<std::mutex> lock(wk->mu); }
      wk->cv.notify_all();
    }
    egress_.wake_all();  // workers blocked on a full egress re-check stop
  });
  pool_.start(workers, [this](std::size_t w, const std::atomic<bool>& stop) {
    worker_loop(w, stop);
  });
}

DatagramPipeline::~DatagramPipeline() { pool_.stop(); }

bool DatagramPipeline::submit(const net::Ipv4Header& header,
                              util::Bytes wire) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  Item item;
  item.header = header;
  item.source = Principal::from_ipv4(header.source);
  const std::size_t shard = endpoint_.recv_shard_of_wire(item.source, wire);
  item.wire = std::move(wire);

  Worker& wk = *workers_[shard % workers_.size()];
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  wk.queued.fetch_add(1, std::memory_order_relaxed);
  if (!ingress_[shard]->try_push(std::move(item))) {
    wk.queued.fetch_sub(1, std::memory_order_relaxed);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.backpressure_drops.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Same empty-critical-section handshake as the wake hook (see above).
  { std::lock_guard<std::mutex> lock(wk.mu); }
  wk.cv.notify_one();
  return true;
}

void DatagramPipeline::worker_loop(std::size_t w,
                                   const std::atomic<bool>& stop) {
  Worker& wk = *workers_[w];
  Item item;
  for (;;) {
    bool worked = false;
    for (const std::size_t shard : wk.shards) {
      while (ingress_[shard]->try_pop(item)) {
        wk.queued.fetch_sub(1, std::memory_order_relaxed);
        worked = true;
        process(wk, item);
        if (stop.load(std::memory_order_relaxed)) return;
      }
    }
    if (stop.load(std::memory_order_relaxed)) return;
    if (worked) continue;
    std::unique_lock<std::mutex> lock(wk.mu);
    wk.cv.wait(lock, [&] {
      return wk.queued.load(std::memory_order_relaxed) > 0 ||
             stop.load(std::memory_order_relaxed);
    });
  }
}

void DatagramPipeline::process(Worker& wk, Item& item) {
  const std::uint64_t t0 = thread_cpu_ns();
  const ReceiveIntoOutcome outcome =
      endpoint_.unprotect_into(wk.ctx, item.source, item.wire, wk.body);
  wk.busy_ns.fetch_add(thread_cpu_ns() - t0, std::memory_order_relaxed);

  if (const auto* err = std::get_if<ReceiveError>(&outcome)) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    if (on_reject_) on_reject_(*err);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  Result r;
  r.header = item.header;
  r.body = std::move(wk.body);
  // The drained wire buffer (capacity >= any plaintext it carried) becomes
  // this worker's next body staging: steady state recycles two buffers per
  // worker instead of allocating per datagram.
  wk.body = std::move(item.wire);
  if (!egress_.push_wait(std::move(r), pool_.stop_flag())) {
    // Shutdown while the egress was full: the result dies with the
    // pipeline. Account it so drain_all() callers aren't left waiting.
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

std::size_t DatagramPipeline::drain(const Sink& sink) {
  Result r;
  std::size_t n = 0;
  while (egress_.try_pop(r)) {
    sink(r.header, std::move(r.body));
    stats_.drained.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    ++n;
  }
  return n;
}

void DatagramPipeline::drain_all(const Sink& sink) {
  while (in_flight_.load(std::memory_order_acquire) > 0) {
    if (drain(sink) == 0) std::this_thread::yield();
  }
  drain(sink);
}

void DatagramPipeline::register_metrics(obs::MetricsRegistry& registry,
                                        const std::string& prefix) const {
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".submitted", stats_.submitted);
    emit.counter(prefix + ".backpressure_drops", stats_.backpressure_drops);
    emit.counter(prefix + ".accepted", stats_.accepted);
    emit.counter(prefix + ".rejected", stats_.rejected);
    emit.counter(prefix + ".drained", stats_.drained);
    emit.counter(prefix + ".ingress_dropped", ingress_dropped());
    emit.gauge(prefix + ".workers", static_cast<double>(worker_count()));
    emit.gauge(prefix + ".in_flight", static_cast<double>(in_flight()));
    for (std::size_t s = 0; s < ingress_.size(); ++s)
      emit.counter(
          prefix + ".ingress_dropped.shard" + std::to_string(s),
          ingress_[s]->dropped());
    for (std::size_t w = 0; w < workers_.size(); ++w)
      emit.counter(prefix + ".worker" + std::to_string(w) + ".busy_ns",
                   worker_busy_ns(w));
  });
}

}  // namespace fbs::core
