#include "fbs/pipeline.hpp"

#include <chrono>
#include <ctime>
#include <thread>

#if defined(__linux__)
#include <time.h>
#endif

namespace fbs::core {

namespace {

/// CPU time consumed by the calling thread. This is what makes per-worker
/// busy accounting meaningful on a machine with fewer cores than workers:
/// wall time would charge a descheduled worker for its neighbors' work.
/// Off Linux the fallback is std::clock() -- process CPU time, which still
/// never counts descheduled wall time but attributes all threads' cycles
/// to each, so per-worker figures become approximate; busy_clock() tells
/// callers which regime they are in so speedup math can refuse to lie.
#if defined(__linux__)
constexpr std::string_view kBusyClockName = "thread-cputime";
std::uint64_t thread_cpu_ns() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  return 0;
}
#else
constexpr std::string_view kBusyClockName = "process-cputime";
std::uint64_t thread_cpu_ns() {
  return static_cast<std::uint64_t>(std::clock()) *
         (1'000'000'000ull / CLOCKS_PER_SEC);
}
#endif

PipelineConfig normalized(PipelineConfig config, std::size_t shards) {
  if (config.workers == 0) config.workers = 1;
  if (config.workers > shards) config.workers = shards;
  if (config.batch == 0) config.batch = 1;
  if (config.pool_buffers == 0) {
    // Auto: two bursts of bodies per worker (one being filled, one riding
    // the egress ring) plus a burst of slack for the drain lane.
    config.pool_buffers = config.workers * config.batch * 2 + config.batch;
  }
  return config;
}

util::BufferPoolConfig pool_config(const PipelineConfig& config) {
  util::BufferPoolConfig pc;
  pc.buffer_bytes = config.pool_buffer_bytes;
  pc.slab_buffers = config.pool_buffers;
  pc.lanes = config.workers + 1;  // +1: the drain thread's recycle lane
  pc.lane_cap = config.batch * 2;
  return pc;
}

}  // namespace

std::string_view DatagramPipeline::busy_clock() { return kBusyClockName; }

DatagramPipeline::DatagramPipeline(FbsEndpoint& endpoint,
                                   const PipelineConfig& config,
                                   RejectHook on_reject)
    : endpoint_(endpoint),
      config_(normalized(config, endpoint.shard_count())),
      on_reject_(std::move(on_reject)),
      egress_(config_.egress_capacity),
      buffers_(pool_config(config_)) {
  const std::size_t shards = endpoint_.shard_count();
  const std::size_t workers = config_.workers;
  drain_lane_ = workers;
  drain_buf_.reserve(config_.batch);

  ingress_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s)
    ingress_.push_back(std::make_unique<util::BoundedMpscRing<Item>>(
        config_.ingress_capacity));

  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.push_back(std::make_unique<Worker>());
    workers_[w]->index = w;
    workers_[w]->batch.reserve(config_.batch);
    workers_[w]->results.reserve(config_.batch);
    workers_[w]->sources.resize(config_.batch);
    workers_[w]->bodies.reserve(config_.batch);
    workers_[w]->burst.reserve(config_.batch);
    for (std::size_t s = w; s < shards; s += workers)
      workers_[w]->shards.push_back(s);
  }

  pool_.set_wake([this] {
    for (auto& wk : workers_) {
      // Empty critical section before notify: a worker between its
      // predicate check and its wait cannot miss the signal.
      { std::lock_guard<std::mutex> lock(wk->mu); }
      wk->cv.notify_all();
    }
    egress_.wake_all();  // workers blocked on a full egress re-check stop
  });
  pool_.start(workers, [this](std::size_t w, const std::atomic<bool>& stop) {
    worker_loop(w, stop);
  });
}

DatagramPipeline::~DatagramPipeline() { stop(); }

void DatagramPipeline::stop() {
  stopped_.store(true, std::memory_order_release);
  pool_.stop();  // sets the flag, wakes every waiter, joins the workers
  // The workers are gone; whatever is still parked in the ingress rings
  // would otherwise hold in_flight above zero forever (the drain_all
  // livelock). Account it here -- single-threaded now, every ring's
  // consumer side is ours.
  Item item;
  for (auto& ring : ingress_) {
    while (ring->try_pop(item)) {
      stats_.shutdown_discards.fetch_add(1, std::memory_order_relaxed);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      buffers_.release(drain_lane_, std::move(item.wire));
    }
  }
}

bool DatagramPipeline::submit(const net::Ipv4Header& header,
                              util::Bytes wire) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  if (stopped_.load(std::memory_order_acquire)) {
    stats_.backpressure_drops.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Scratch principal per submitting thread: identity is the 4 address
  // bytes, rewritten in place so steady-state submits never allocate.
  thread_local Principal source;
  source.assign_ipv4(header.source);
  const std::size_t shard = endpoint_.recv_shard_of_wire(source, wire);
  Item item;
  item.header = header;
  item.wire = std::move(wire);

  Worker& wk = *workers_[shard % workers_.size()];
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  wk.queued.fetch_add(1, std::memory_order_relaxed);
  if (!ingress_[shard]->try_push(std::move(item))) {
    wk.queued.fetch_sub(1, std::memory_order_relaxed);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    stats_.backpressure_drops.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Same empty-critical-section handshake as the wake hook (see above).
  { std::lock_guard<std::mutex> lock(wk.mu); }
  wk.cv.notify_one();
  // Push-then-recheck closes the race with stop(): if the store to
  // stopped_ is visible now, our item may have landed after stop()'s own
  // ring sweep, so sweep again ourselves (mutex-atomic pops make the
  // accounting exactly-once no matter who wins). If it is not visible,
  // the push happened-before the sweep -- the ring mutex orders them --
  // and stop() accounts the item.
  if (stopped_.load(std::memory_order_acquire)) account_stranded(shard);
  return true;
}

std::size_t DatagramPipeline::submit_batch(const net::Ipv4Header& header,
                                           std::span<util::Bytes> wires) {
  if (wires.empty()) return 0;
  stats_.submitted.fetch_add(wires.size(), std::memory_order_relaxed);
  if (stopped_.load(std::memory_order_acquire)) {
    stats_.backpressure_drops.fetch_add(wires.size(),
                                        std::memory_order_relaxed);
    return 0;
  }
  thread_local Principal source;
  source.assign_ipv4(header.source);

  // Group the burst by shard, preserving order within each shard (a flow
  // never spans shards, so per-flow FIFO survives the regrouping), then
  // push each group with one ring lock and one worker wake.
  thread_local std::vector<std::size_t> shard_of;
  thread_local std::vector<Item> group;
  shard_of.clear();
  shard_of.reserve(wires.size());
  group.reserve(wires.size());
  for (const util::Bytes& wire : wires)
    shard_of.push_back(endpoint_.recv_shard_of_wire(source, wire));

  std::size_t accepted_total = 0;
  for (std::size_t i = 0; i < wires.size(); ++i) {
    if (shard_of[i] == SIZE_MAX) continue;  // already grouped
    const std::size_t shard = shard_of[i];
    group.clear();
    for (std::size_t j = i; j < wires.size(); ++j) {
      if (shard_of[j] != shard) continue;
      if (j != i) shard_of[j] = SIZE_MAX;
      Item item;
      item.header = header;
      item.wire = std::move(wires[j]);
      group.push_back(std::move(item));
    }

    Worker& wk = *workers_[shard % workers_.size()];
    in_flight_.fetch_add(static_cast<std::int64_t>(group.size()),
                         std::memory_order_acq_rel);
    wk.queued.fetch_add(static_cast<std::int64_t>(group.size()),
                        std::memory_order_relaxed);
    const std::size_t pushed =
        ingress_[shard]->try_push_batch({group.data(), group.size()});
    const std::size_t refused = group.size() - pushed;
    if (refused > 0) {
      wk.queued.fetch_sub(static_cast<std::int64_t>(refused),
                          std::memory_order_relaxed);
      in_flight_.fetch_sub(static_cast<std::int64_t>(refused),
                           std::memory_order_acq_rel);
      stats_.backpressure_drops.fetch_add(refused,
                                          std::memory_order_relaxed);
    }
    accepted_total += pushed;
    if (pushed > 0) {
      { std::lock_guard<std::mutex> lock(wk.mu); }
      wk.cv.notify_one();
      // Same push-then-recheck as submit(): see the comment there.
      if (stopped_.load(std::memory_order_acquire)) account_stranded(shard);
    }
  }
  return accepted_total;
}

void DatagramPipeline::account_stranded(std::size_t shard) {
  // A submit observed stopped_ only after its push landed: the items may
  // have arrived after both the workers' and stop()'s sweeps, where they
  // would hold in_flight above zero forever. Clear the ring here instead.
  // The wires die rather than return to the pool -- pool lanes are
  // single-owner and the submitting thread owns none.
  Item item;
  Worker& wk = *workers_[shard % workers_.size()];
  while (ingress_[shard]->try_pop(item)) {
    wk.queued.fetch_sub(1, std::memory_order_relaxed);
    stats_.shutdown_discards.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void DatagramPipeline::worker_loop(std::size_t w,
                                   const std::atomic<bool>& stop) {
  Worker& wk = *workers_[w];
  for (;;) {
    bool worked = false;
    for (const std::size_t shard : wk.shards) {
      for (;;) {
        wk.batch.clear();
        const std::size_t n =
            ingress_[shard]->pop_batch(wk.batch, config_.batch);
        if (n == 0) break;
        wk.queued.fetch_sub(static_cast<std::int64_t>(n),
                            std::memory_order_relaxed);
        worked = true;
        process_burst(wk);
        flush_results(wk);
        if (stop.load(std::memory_order_relaxed)) {
          discard_residual_ingress(wk);
          return;
        }
      }
    }
    if (stop.load(std::memory_order_relaxed)) {
      discard_residual_ingress(wk);
      return;
    }
    if (worked) continue;
    std::unique_lock<std::mutex> lock(wk.mu);
    wk.cv.wait(lock, [&] {
      return wk.queued.load(std::memory_order_relaxed) > 0 ||
             stop.load(std::memory_order_relaxed);
    });
  }
}

void DatagramPipeline::process_burst(Worker& wk) {
  const std::uint64_t t0 = thread_cpu_ns();
  const std::size_t n = wk.batch.size();
  wk.bodies.clear();
  wk.burst.clear();
  for (std::size_t i = 0; i < n; ++i) {
    wk.sources[i].assign_ipv4(wk.batch[i].header.source);
    wk.bodies.push_back(buffers_.acquire(wk.index));
  }
  // Descriptor pointers are taken only after every body is in place:
  // bodies/burst are reserved to config.batch, so no push reallocates.
  for (std::size_t i = 0; i < n; ++i) {
    ReceiveBurstItem it;
    it.source = &wk.sources[i];
    it.wire = wk.batch[i].wire;
    it.body_out = &wk.bodies[i];
    wk.burst.push_back(it);
  }
  endpoint_.unprotect_burst_into(wk.ctx, {wk.burst.data(), n});
  wk.busy_ns.fetch_add(thread_cpu_ns() - t0, std::memory_order_relaxed);

  for (std::size_t i = 0; i < n; ++i) {
    Item& item = wk.batch[i];
    util::Bytes& body = wk.bodies[i];
    if (const auto* err = std::get_if<ReceiveError>(&wk.burst[i].outcome)) {
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
      if (on_reject_) on_reject_(*err);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      buffers_.release(wk.index, std::move(body));
      buffers_.release(wk.index, std::move(item.wire));
      continue;
    }
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    Result r;
    r.header = item.header;
    r.body = std::move(body);
    wk.results.push_back(std::move(r));
    // The drained wire buffer goes back to this worker's pool lane: steady
    // state swaps one pooled body out for one consumed wire in, so the hot
    // path never touches the global allocator or another core's cache.
    buffers_.release(wk.index, std::move(item.wire));
  }
}

void DatagramPipeline::flush_results(Worker& wk) {
  if (wk.results.empty()) return;
  // One blocking push for the whole burst (work already paid for its
  // cryptography). Shutdown while the egress is full abandons the tail:
  // those results die with the pipeline, accounted so drain_all() callers
  // aren't left waiting.
  const std::size_t pushed = egress_.push_wait_batch(
      {wk.results.data(), wk.results.size()}, pool_.stop_flag());
  for (std::size_t i = pushed; i < wk.results.size(); ++i) {
    stats_.egress_dropped.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    buffers_.release(wk.index, std::move(wk.results[i].body));
  }
  wk.results.clear();
}

void DatagramPipeline::discard_residual_ingress(Worker& wk) {
  // Stopping with queued work: pop-and-account everything this worker
  // owns so in_flight can reach zero (the drain_all livelock fix). The
  // items are discarded, not processed -- shutdown should not pay for
  // cryptography nobody will drain.
  Item item;
  for (const std::size_t shard : wk.shards) {
    while (ingress_[shard]->try_pop(item)) {
      wk.queued.fetch_sub(1, std::memory_order_relaxed);
      stats_.shutdown_discards.fetch_add(1, std::memory_order_relaxed);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      buffers_.release(wk.index, std::move(item.wire));
    }
  }
}

std::size_t DatagramPipeline::drain(const Sink& sink) {
  std::size_t n = 0;
  for (;;) {
    drain_buf_.clear();
    if (egress_.pop_batch(drain_buf_, config_.batch) == 0) return n;
    for (Result& r : drain_buf_) {
      sink(r.header, std::move(r.body));
      stats_.drained.fetch_add(1, std::memory_order_relaxed);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      ++n;
    }
  }
}

void DatagramPipeline::drain_all(const Sink& sink) {
  while (in_flight_.load(std::memory_order_acquire) > 0) {
    if (drain(sink) == 0) std::this_thread::yield();
  }
  drain(sink);
}

void DatagramPipeline::register_metrics(obs::MetricsRegistry& registry,
                                        const std::string& prefix) const {
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".submitted", stats_.submitted);
    emit.counter(prefix + ".backpressure_drops", stats_.backpressure_drops);
    emit.counter(prefix + ".accepted", stats_.accepted);
    emit.counter(prefix + ".rejected", stats_.rejected);
    emit.counter(prefix + ".drained", stats_.drained);
    emit.counter(prefix + ".egress_dropped", stats_.egress_dropped);
    emit.counter(prefix + ".shutdown_discards", stats_.shutdown_discards);
    emit.counter(prefix + ".ingress_dropped", ingress_dropped());
    emit.gauge(prefix + ".workers", static_cast<double>(worker_count()));
    emit.gauge(prefix + ".in_flight", static_cast<double>(in_flight()));
    emit.gauge(prefix + ".busy_clock_is_thread_cputime",
               busy_clock() == "thread-cputime" ? 1.0 : 0.0);
    const util::BufferPool::Stats pool = buffers_.stats();
    emit.counter(prefix + ".pool.heap_fallbacks", pool.heap_fallbacks);
    emit.counter(prefix + ".pool.refills", pool.refills);
    emit.counter(prefix + ".pool.overflow_discards", pool.overflow_discards);
    emit.gauge(prefix + ".pool.high_water",
               static_cast<double>(pool.high_water));
    emit.gauge(prefix + ".pool.pooled", static_cast<double>(pool.pooled));
    for (std::size_t s = 0; s < ingress_.size(); ++s)
      emit.counter(
          prefix + ".ingress_dropped.shard" + std::to_string(s),
          ingress_[s]->dropped());
    for (std::size_t w = 0; w < workers_.size(); ++w)
      emit.counter(prefix + ".worker" + std::to_string(w) + ".busy_ns",
                   worker_busy_ns(w));
  });
}

}  // namespace fbs::core
