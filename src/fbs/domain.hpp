// Striped flow-state domains: the unit of concurrency for the sharded
// datagram engine.
//
// The paper's kernel implementation serializes all of FBSSend/FBSReceive
// inside the 4.4BSD IP stack. Per-flow state, though, is naturally
// partitionable -- nothing on the datagram path ever relates two different
// flows -- so the engine stripes every piece of mutable per-flow state
// (FST/policy, TFKC, RFKC, combined entries, freshness/replay windows,
// confounder generator, stats, stage tracer) into N independent FlowDomain
// shards selected by a flow hash. Two flows on different shards never share
// a lock or a cache line; two datagrams of the same flow always land on the
// same shard, which is what keeps per-flow semantics (replay windows, key
// wear-out counters, FST gap detection) exactly as strong as in the
// single-threaded engine.
//
// Locking contract: FlowDomain::mu is held for the ENTIRE protect or
// unprotect of a datagram touching that domain. One lock for the whole
// operation is what makes the replay check+commit pair a single atomic
// step per shard (see replay.hpp) and keeps the per-flow MacContext safe
// to mutate. The lock is uncontended unless two threads genuinely race on
// the same flow's shard; its cost is nanoseconds against the tens of
// microseconds of per-datagram cryptography.
//
// Everything here is soft state, exactly as in the unsharded engine:
// clearing any domain at any moment merely costs re-derivation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <variant>
#include <vector>

#include "crypto/algorithms.hpp"
#include "crypto/batch.hpp"
#include "crypto/md5.hpp"
#include "fbs/caches.hpp"
#include "fbs/fam.hpp"
#include "fbs/keying.hpp"
#include "fbs/principal.hpp"
#include "fbs/replay.hpp"
#include "obs/stages.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::core {

struct FbsConfig {
  crypto::AlgorithmSuite suite{};  // keyed MD5 + DES-CBC by default

  /// Flow state table (Figure 7): size and conversation gap threshold.
  /// With sharding, each domain gets its own table of this size.
  std::size_t fst_size = 256;
  util::TimeUs flow_threshold = util::seconds(600);

  /// Flow key caches (per domain, like the FST).
  std::size_t tfkc_size = 256;
  std::size_t rfkc_size = 256;
  CacheHashKind cache_hash = CacheHashKind::kCrc32;
  std::size_t cache_ways = 1;

  /// Section 7.2's optimization: merge the FST and the TFKC so mapper and
  /// key lookup are one probe. false exercises the split Figure 4/6 path.
  bool combined_fst_tfkc = true;

  /// Replay window half-width (Section 6.2) and the optional strict
  /// within-window replay cache extension.
  std::uint32_t freshness_window_minutes = 5;
  bool strict_replay = false;

  /// Key-lifetime policy (Section 5.2: "With use, an encryption key will
  /// 'wear out' and should be changed... rekeying can be easily
  /// accomplished via the FAM by changing the sfl. Rekeying decisions are
  /// made by policy modules."). Zero disables a limit. When a flow exceeds
  /// any limit, the next datagram transparently starts a fresh flow
  /// (fresh sfl, fresh key); the receiver needs no coordination.
  std::uint64_t rekey_after_datagrams = 0;
  std::uint64_t rekey_after_bytes = 0;
  util::TimeUs rekey_after_age = 0;

  /// Route eligible DES-CBC decryption through the 64-wide bitsliced batch
  /// engine: worker bursts are decrypted cross-datagram before per-datagram
  /// MAC verification, and single datagrams above the planner's threshold
  /// split their own blocks across lanes. false forces the scalar
  /// table-driven core everywhere (the fig8 "DES+MD5 scalar" curve).
  bool bitslice_crypto = true;

  /// Record per-stage latencies on the datagram path. Off by default: the
  /// steady_clock reads would perturb the per-packet CPU measurements of
  /// the Figure 8 bench, so benches opt in for instrumented runs only.
  bool trace_stages = false;

  /// Number of independent flow-state domains (shards). 1 reproduces the
  /// single-threaded engine's exact behaviour; a shard-per-core value lets
  /// a worker pool process distinct flows fully in parallel. 0 is treated
  /// as 1.
  std::size_t shards = 1;

  /// Non-zero selects the million-flow control plane (megaflow.hpp): each
  /// shard's FAM policy becomes a budgeted flat-hash table + timer wheel
  /// holding at most this many concurrent flows, with exact five-tuple
  /// matching and O(expired) sweeps. fst_size is then ignored by the FAM
  /// (it still sizes nothing else), and the combined FST+TFKC path is
  /// disabled -- the Section 7.2 merge assumes the FST is the small
  /// direct-mapped array. Zero keeps the paper's FiveTuplePolicy.
  std::size_t max_flows_per_shard = 0;
};

enum class ReceiveError : std::uint8_t {
  kMalformed,     // header does not parse / unknown suite
  kStale,         // timestamp outside the freshness window
  kReplay,        // strict replay cache rejection
  kUnknownPeer,   // no master key obtainable for the claimed source
  kBadMac,        // MAC mismatch (tampering or wrong flow key)
  kDecryptFailed, // ciphertext malformed
};

inline constexpr std::size_t kReceiveErrorKinds = 6;

const char* to_string(ReceiveError e);

/// A successfully received datagram plus its flow demultiplexing info.
struct ReceivedDatagram {
  Datagram datagram;
  Sfl sfl = 0;
  bool was_secret = false;
  crypto::AlgorithmSuite suite;
};

using ReceiveOutcome = std::variant<ReceivedDatagram, ReceiveError>;

/// Demultiplexing info for the allocation-free receive path: the body lands
/// in the caller's buffer, so only the flow facts travel in the result.
struct ReceivedInfo {
  Sfl sfl = 0;
  bool was_secret = false;
  crypto::AlgorithmSuite suite;
};

using ReceiveIntoOutcome = std::variant<ReceivedInfo, ReceiveError>;

struct SendStats {
  std::uint64_t datagrams = 0;
  std::uint64_t encrypted = 0;
  std::uint64_t flow_keys_derived = 0;  // TFKC / combined-table misses
  std::uint64_t key_unavailable = 0;    // master key could not be obtained
  std::uint64_t lifetime_rekeys = 0;    // flows retired by lifetime policy
};

struct ReceiveStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t rejected_replay = 0;
  std::uint64_t rejected_unknown_peer = 0;
  std::uint64_t rejected_bad_mac = 0;
  std::uint64_t rejected_decrypt = 0;
  std::uint64_t flow_keys_derived = 0;  // RFKC misses

  /// The same rejections indexed by ReceiveError, so experiments can report
  /// degraded-mode behaviour generically without naming each field.
  std::array<std::uint64_t, kReceiveErrorKinds> by_kind{};

  std::uint64_t rejected_by(ReceiveError e) const {
    return by_kind[static_cast<std::size_t>(e)];
  }
  std::uint64_t rejected() const {
    return rejected_malformed + rejected_stale + rejected_replay +
           rejected_unknown_peer + rejected_bad_mac + rejected_decrypt;
  }
};

/// Per-worker scratch making protect_into/unprotect_into re-entrant: every
/// buffer the single-threaded engine kept as an endpoint member now travels
/// with the calling thread. One WorkContext per concurrent caller; reusing
/// it across datagrams preserves the zero-allocation warm path. The context
/// holds no flow state -- it is pure scratch and may be discarded freely.
class WorkContext {
 public:
  WorkContext() = default;
  WorkContext(const WorkContext&) = delete;
  WorkContext& operator=(const WorkContext&) = delete;

  util::Bytes attrs;       // FlowAttributes encoding for FST/shard probes
  util::Bytes key;         // TFKC/RFKC cache key staging
  util::Bytes body;        // ciphertext staging on send
  crypto::Md5 kdf_hash;    // H of Section 5.2 (need not equal the MAC hash)
  /// The 64-wide bitsliced DES engine plus its batch planner. Per worker,
  /// not per domain: the lane registers are scratch, and keeping them with
  /// the calling thread lets every worker run wide passes concurrently.
  crypto::CryptoBatch batch;
};

/// One row of the merged FST+TFKC (Section 7.2).
struct CombinedFlowEntry {
  bool valid = false;
  FlowAttributes attrs;
  Sfl sfl = 0;
  FlowCryptoContext ctx;  // ready key schedule + keyed MAC context
  util::TimeUs created = 0;
  util::TimeUs last = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t bytes = 0;
};

/// One shard of the engine's mutable per-flow state. All members are
/// guarded by `mu` (held for a whole datagram operation); the engine is the
/// only writer, tests and the metrics aggregators are read-only consumers
/// that also take the lock.
class FlowDomain {
 public:
  FlowDomain(const FbsConfig& config, const util::Clock& clock,
             SflAllocator& sfl_alloc, std::uint64_t confounder_seed);

  FlowDomain(const FlowDomain&) = delete;
  FlowDomain& operator=(const FlowDomain&) = delete;

  mutable std::mutex mu;
  util::Lcg48 confounder_gen;
  std::unique_ptr<FlowPolicy> policy;
  std::vector<CombinedFlowEntry> combined;  // FST+TFKC merged (Section 7.2)
  SetAssociativeCache<FlowCryptoContext> tfkc;
  SetAssociativeCache<FlowCryptoContext> rfkc;
  FreshnessChecker freshness;
  SendStats send_stats;
  ReceiveStats receive_stats;
  obs::StageTracer tracer;
};

}  // namespace fbs::core
