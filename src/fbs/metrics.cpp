#include "fbs/metrics.hpp"

#include "fbs/ip_map.hpp"
#include "fbs/tunnel.hpp"

namespace fbs::core {

namespace {

// Emit helpers shared by the reference-capturing free overloads (callers
// own a long-lived struct) and the endpoint's this-capturing source (which
// aggregates across shards at snapshot time).

void emit_cache(obs::MetricsRegistry::Emitter& emit, const std::string& prefix,
                const CacheStats& stats) {
  emit.counter(prefix + ".hits", stats.hits);
  emit.counter(prefix + ".misses.cold", stats.cold_misses);
  emit.counter(prefix + ".misses.capacity", stats.capacity_misses);
  emit.counter(prefix + ".misses.collision", stats.collision_misses);
  emit.gauge(prefix + ".miss_rate", stats.miss_rate());
}

void emit_send(obs::MetricsRegistry::Emitter& emit, const std::string& prefix,
               const SendStats& stats) {
  emit.counter(prefix + ".datagrams", stats.datagrams);
  emit.counter(prefix + ".encrypted", stats.encrypted);
  emit.counter(prefix + ".flow_keys_derived", stats.flow_keys_derived);
  emit.counter(prefix + ".key_unavailable", stats.key_unavailable);
  emit.counter(prefix + ".lifetime_rekeys", stats.lifetime_rekeys);
}

void emit_recv(obs::MetricsRegistry::Emitter& emit, const std::string& prefix,
               const ReceiveStats& stats) {
  emit.counter(prefix + ".accepted", stats.accepted);
  emit.counter(prefix + ".flow_keys_derived", stats.flow_keys_derived);
  for (std::size_t i = 0; i < kReceiveErrorKinds; ++i) {
    const auto kind = static_cast<ReceiveError>(i);
    emit.counter(prefix + ".rejected." + to_string(kind), stats.by_kind[i]);
  }
}

void emit_fam(obs::MetricsRegistry::Emitter& emit, const std::string& prefix,
              const FamStats& stats) {
  emit.counter(prefix + ".datagrams", stats.datagrams);
  emit.counter(prefix + ".flows_created", stats.flows_created);
  emit.counter(prefix + ".mapper_hits", stats.mapper_hits);
  emit.counter(prefix + ".hash_evictions", stats.hash_evictions);
  emit.counter(prefix + ".mapper_expirations", stats.mapper_expirations);
  emit.counter(prefix + ".sweeper_expirations", stats.sweeper_expirations);
}

void emit_fresh(obs::MetricsRegistry::Emitter& emit, const std::string& prefix,
                const FreshnessChecker::Stats& stats) {
  emit.counter(prefix + ".fresh", stats.fresh);
  emit.counter(prefix + ".stale", stats.stale);
  emit.counter(prefix + ".replays", stats.replays);
}

}  // namespace

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const CacheStats& stats) {
  registry.add_source([prefix, &stats](obs::MetricsRegistry::Emitter& emit) {
    emit_cache(emit, prefix, stats);
  });
}

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const SendStats& stats) {
  registry.add_source([prefix, &stats](obs::MetricsRegistry::Emitter& emit) {
    emit_send(emit, prefix, stats);
  });
}

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const ReceiveStats& stats) {
  registry.add_source([prefix, &stats](obs::MetricsRegistry::Emitter& emit) {
    emit_recv(emit, prefix, stats);
  });
}

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const FamStats& stats) {
  registry.add_source([prefix, &stats](obs::MetricsRegistry::Emitter& emit) {
    emit_fam(emit, prefix, stats);
  });
}

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix,
                      const FreshnessChecker::Stats& stats) {
  registry.add_source([prefix, &stats](obs::MetricsRegistry::Emitter& emit) {
    emit_fresh(emit, prefix, stats);
  });
}

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const MkdStats& stats) {
  registry.add_source([prefix, &stats](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".upcalls", stats.upcalls);
    emit.counter(prefix + ".directory_fetches", stats.directory_fetches);
    emit.counter(prefix + ".directory_failures", stats.directory_failures);
    emit.counter(prefix + ".directory_retries", stats.directory_retries);
    emit.counter(prefix + ".verify_failures", stats.verify_failures);
    emit.counter(prefix + ".master_keys_computed",
                 stats.master_keys_computed);
    emit.counter(prefix + ".negative_cache_hits", stats.negative_cache_hits);
    emit.counter(prefix + ".negative_cache_inserts",
                 stats.negative_cache_inserts);
    // Operator-facing aliases: how often we retried and how long we waited
    // doing it (virtual time; ms so dashboards stay readable).
    emit.counter(prefix + ".retries", stats.directory_retries);
    emit.counter(prefix + ".backoff_ms", stats.backoff_waited_us / 1000);
  });
}

void FbsEndpoint::register_metrics(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
  // One source aggregating across shards at snapshot time: the accessors
  // take each domain's lock, so a snapshot racing live traffic reads a
  // coherent per-domain view.
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit_send(emit, prefix + ".send", send_stats());
    emit_recv(emit, prefix + ".recv", receive_stats());
    emit_cache(emit, prefix + ".cache.tfkc", tfkc_stats());
    emit_cache(emit, prefix + ".cache.rfkc", rfkc_stats());
    emit_fresh(emit, prefix + ".freshness", freshness_stats());
    emit_fam(emit, prefix + ".fam", fam_stats());
    emit.gauge(prefix + ".shards", static_cast<double>(shard_count()));
    if (const MegaflowStats* m = megaflow_stats()) {
      const std::string mp = prefix + ".megaflow";
      emit.counter(mp + ".budget_evictions", m->budget_evictions);
      emit.counter(mp + ".wheel_cascades", m->wheel_cascades);
      emit.counter(mp + ".wheel_fires", m->wheel_fires);
      emit.counter(mp + ".sweep_touched", m->sweep_touched);
      emit.counter(mp + ".map_rehashes", m->map_rehashes);
      emit.counter(mp + ".slab_grows", m->slab_grows);
      emit.gauge(mp + ".live_flows", static_cast<double>(m->live_flows));
      emit.gauge(mp + ".peak_live_flows",
                 static_cast<double>(m->peak_live_flows));
      emit.gauge(mp + ".map_load_factor", m->map_load_factor);
      emit.gauge(mp + ".resident_bytes",
                 static_cast<double>(m->resident_bytes));
    }
  });
  // Stage latencies stay per shard (LatencyRecorder is single-writer; each
  // domain's recorder is written only under that domain's lock). Keep the
  // unsuffixed name in the common single-shard configuration.
  if (shard_count() == 1) {
    domains_.front()->tracer.register_metrics(registry, prefix);
  } else {
    for (std::size_t i = 0; i < domains_.size(); ++i)
      domains_[i]->tracer.register_metrics(
          registry, prefix + ".shard" + std::to_string(i));
  }
}

void KeyManager::register_metrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit_cache(emit, prefix + ".cache.mkc", mkc_stats());
    emit.counter(prefix + ".upcalls", upcalls());
  });
}

void MasterKeyDaemon::register_metrics(obs::MetricsRegistry& registry,
                                       const std::string& prefix) const {
  core::register_metrics(registry, prefix + ".mkd", stats_);
  core::register_metrics(registry, prefix + ".cache.pvc", pvc_.stats());
}

void FbsIpMapping::register_metrics(obs::MetricsRegistry& registry,
                                    const std::string& prefix) const {
  endpoint_.register_metrics(registry, prefix);
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".ip.out.protected", counters_.out_protected);
    emit.counter(prefix + ".ip.out.bypassed", counters_.out_bypassed);
    emit.counter(prefix + ".ip.out.raw_ip", counters_.out_raw_ip);
    emit.counter(prefix + ".ip.out.dropped", counters_.out_dropped);
    emit.counter(prefix + ".ip.in.accepted", counters_.in_accepted);
    emit.counter(prefix + ".ip.in.bypassed", counters_.in_bypassed);
    emit.counter(prefix + ".ip.in.raw_ip", counters_.in_raw_ip);
    emit.counter(prefix + ".ip.in.deferred", counters_.in_deferred);
    for (std::size_t i = 0; i < kReceiveErrorKinds; ++i) {
      const auto kind = static_cast<ReceiveError>(i);
      emit.counter(prefix + ".ip.in.rejected." + to_string(kind),
                   counters_.in_rejected[i]);
    }
  });
  if (pipeline_) pipeline_->register_metrics(registry, prefix + ".pipeline");
}

void FbsTunnel::register_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  endpoint_.register_metrics(registry, prefix);
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".tunnel.encapsulated", counters_.encapsulated);
    emit.counter(prefix + ".tunnel.decapsulated", counters_.decapsulated);
    emit.counter(prefix + ".tunnel.key_unavailable",
                 counters_.key_unavailable);
    emit.counter(prefix + ".tunnel.rejected", counters_.rejected);
    emit.counter(prefix + ".tunnel.inner_malformed",
                 counters_.inner_malformed);
  });
}

}  // namespace fbs::core
