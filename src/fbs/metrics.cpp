#include "fbs/metrics.hpp"

#include "fbs/ip_map.hpp"
#include "fbs/tunnel.hpp"

namespace fbs::core {

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const CacheStats& stats) {
  registry.add_source([prefix, &stats](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".hits", stats.hits);
    emit.counter(prefix + ".misses.cold", stats.cold_misses);
    emit.counter(prefix + ".misses.capacity", stats.capacity_misses);
    emit.counter(prefix + ".misses.collision", stats.collision_misses);
    emit.gauge(prefix + ".miss_rate", stats.miss_rate());
  });
}

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const SendStats& stats) {
  registry.add_source([prefix, &stats](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".datagrams", stats.datagrams);
    emit.counter(prefix + ".encrypted", stats.encrypted);
    emit.counter(prefix + ".flow_keys_derived", stats.flow_keys_derived);
    emit.counter(prefix + ".key_unavailable", stats.key_unavailable);
    emit.counter(prefix + ".lifetime_rekeys", stats.lifetime_rekeys);
  });
}

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const ReceiveStats& stats) {
  registry.add_source([prefix, &stats](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".accepted", stats.accepted);
    emit.counter(prefix + ".flow_keys_derived", stats.flow_keys_derived);
    for (std::size_t i = 0; i < kReceiveErrorKinds; ++i) {
      const auto kind = static_cast<ReceiveError>(i);
      emit.counter(prefix + ".rejected." + to_string(kind),
                   stats.by_kind[i]);
    }
  });
}

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const FamStats& stats) {
  registry.add_source([prefix, &stats](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".datagrams", stats.datagrams);
    emit.counter(prefix + ".flows_created", stats.flows_created);
    emit.counter(prefix + ".mapper_hits", stats.mapper_hits);
    emit.counter(prefix + ".hash_evictions", stats.hash_evictions);
    emit.counter(prefix + ".mapper_expirations", stats.mapper_expirations);
    emit.counter(prefix + ".sweeper_expirations", stats.sweeper_expirations);
  });
}

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix,
                      const FreshnessChecker::Stats& stats) {
  registry.add_source([prefix, &stats](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".fresh", stats.fresh);
    emit.counter(prefix + ".stale", stats.stale);
    emit.counter(prefix + ".replays", stats.replays);
  });
}

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const MkdStats& stats) {
  registry.add_source([prefix, &stats](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".upcalls", stats.upcalls);
    emit.counter(prefix + ".directory_fetches", stats.directory_fetches);
    emit.counter(prefix + ".directory_failures", stats.directory_failures);
    emit.counter(prefix + ".directory_retries", stats.directory_retries);
    emit.counter(prefix + ".verify_failures", stats.verify_failures);
    emit.counter(prefix + ".master_keys_computed",
                 stats.master_keys_computed);
    emit.counter(prefix + ".negative_cache_hits", stats.negative_cache_hits);
    emit.counter(prefix + ".negative_cache_inserts",
                 stats.negative_cache_inserts);
  });
}

void FbsEndpoint::register_metrics(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
  core::register_metrics(registry, prefix + ".send", send_stats_);
  core::register_metrics(registry, prefix + ".recv", receive_stats_);
  core::register_metrics(registry, prefix + ".cache.tfkc", tfkc_.stats());
  core::register_metrics(registry, prefix + ".cache.rfkc", rfkc_.stats());
  core::register_metrics(registry, prefix + ".freshness",
                         freshness_.stats());
  core::register_metrics(registry, prefix + ".fam", policy_->stats());
  tracer_.register_metrics(registry, prefix);
}

void KeyManager::register_metrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  core::register_metrics(registry, prefix + ".cache.mkc", mkc_.stats());
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".upcalls", upcalls_);
  });
}

void MasterKeyDaemon::register_metrics(obs::MetricsRegistry& registry,
                                       const std::string& prefix) const {
  core::register_metrics(registry, prefix + ".mkd", stats_);
  core::register_metrics(registry, prefix + ".cache.pvc", pvc_.stats());
}

void FbsIpMapping::register_metrics(obs::MetricsRegistry& registry,
                                    const std::string& prefix) const {
  endpoint_.register_metrics(registry, prefix);
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".ip.out.protected", counters_.out_protected);
    emit.counter(prefix + ".ip.out.bypassed", counters_.out_bypassed);
    emit.counter(prefix + ".ip.out.raw_ip", counters_.out_raw_ip);
    emit.counter(prefix + ".ip.out.dropped", counters_.out_dropped);
    emit.counter(prefix + ".ip.in.accepted", counters_.in_accepted);
    emit.counter(prefix + ".ip.in.bypassed", counters_.in_bypassed);
    emit.counter(prefix + ".ip.in.raw_ip", counters_.in_raw_ip);
    for (std::size_t i = 0; i < kReceiveErrorKinds; ++i) {
      const auto kind = static_cast<ReceiveError>(i);
      emit.counter(prefix + ".ip.in.rejected." + to_string(kind),
                   counters_.in_rejected[i]);
    }
  });
}

void FbsTunnel::register_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  endpoint_.register_metrics(registry, prefix);
  registry.add_source([prefix, this](obs::MetricsRegistry::Emitter& emit) {
    emit.counter(prefix + ".tunnel.encapsulated", counters_.encapsulated);
    emit.counter(prefix + ".tunnel.decapsulated", counters_.decapsulated);
    emit.counter(prefix + ".tunnel.key_unavailable",
                 counters_.key_unavailable);
    emit.counter(prefix + ".tunnel.rejected", counters_.rejected);
    emit.counter(prefix + ".tunnel.inner_malformed",
                 counters_.inner_malformed);
  });
}

}  // namespace fbs::core
