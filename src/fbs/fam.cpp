#include "fbs/fam.hpp"

namespace fbs::core {

namespace {

/// Shared mapper skeleton for table-based policies: match on `attrs` at the
/// hashed index, else start a new flow there (Figure 7's mapper()).
MapResult table_map(std::vector<FlowStateEntry>& table, std::size_t index,
                    const FlowAttributes& attrs, util::TimeUs now,
                    std::uint64_t bytes, util::TimeUs threshold,
                    bool expire_in_mapper, SflAllocator& sfl_alloc,
                    FamStats& stats) {
  ++stats.datagrams;
  FlowStateEntry& e = table[index];

  bool reusable = e.valid && e.attrs == attrs;
  if (reusable && expire_in_mapper && flow_expired(e.last, now, threshold)) {
    // Entry matches but went stale: same conversation boundary the sweeper
    // would have drawn; start a new flow (Section 7.2 combined behavior).
    ++stats.mapper_expirations;
    reusable = false;
  }
  if (reusable) {
    e.last = now;
    ++e.datagrams;
    e.bytes += bytes;
    ++stats.mapper_hits;
    return {e.sfl, false};
  }

  if (e.valid && !(e.attrs == attrs)) ++stats.hash_evictions;
  e.valid = true;
  e.sfl = sfl_alloc.allocate();
  e.attrs = attrs;
  e.created = now;
  e.last = now;
  e.datagrams = 1;
  e.bytes = bytes;
  ++stats.flows_created;
  return {e.sfl, true};
}

/// Figure 7's sweeper(): invalidate entries the shared staleness predicate
/// (flow_expired, the same one the mapper probe consults) says are gone.
std::size_t table_sweep(std::vector<FlowStateEntry>& table, util::TimeUs now,
                        util::TimeUs threshold, FamStats& stats) {
  std::size_t expired = 0;
  for (FlowStateEntry& e : table) {
    if (e.valid && flow_expired(e.last, now, threshold)) {
      e.valid = false;
      ++expired;
    }
  }
  stats.sweeper_expirations += expired;
  return expired;
}

std::size_t table_active(const std::vector<FlowStateEntry>& table,
                         util::TimeUs now, util::TimeUs threshold) {
  std::size_t n = 0;
  for (const FlowStateEntry& e : table)
    if (e.valid && !flow_expired(e.last, now, threshold)) ++n;
  return n;
}

}  // namespace

FiveTuplePolicy::FiveTuplePolicy(std::size_t fst_size, util::TimeUs threshold,
                                 SflAllocator& sfl_alloc,
                                 bool expire_in_mapper, CacheHashKind hash)
    : table_(fst_size ? fst_size : 1),
      threshold_(threshold),
      sfl_alloc_(sfl_alloc),
      expire_in_mapper_(expire_in_mapper),
      hash_(hash) {}

std::string FiveTuplePolicy::name() const {
  return "five-tuple(threshold=" +
         std::to_string(threshold_ / util::kMicrosPerSecond) + "s)";
}

std::size_t FiveTuplePolicy::index_of(const FlowAttributes& attrs) const {
  return cache_index(hash_, attrs.encode(), table_.size());
}

MapResult FiveTuplePolicy::map(const Datagram& d, util::TimeUs now) {
  return table_map(table_, index_of(d.attrs), d.attrs, now, d.body.size(),
                   threshold_, expire_in_mapper_, sfl_alloc_, stats_);
}

std::size_t FiveTuplePolicy::sweep(util::TimeUs now) {
  return table_sweep(table_, now, threshold_, stats_);
}

void FiveTuplePolicy::expire_flow(const FlowAttributes& attrs) {
  FlowStateEntry& e = table_[index_of(attrs)];
  if (e.valid && e.attrs == attrs) e.valid = false;
}

const FlowStateEntry* FiveTuplePolicy::find(
    const FlowAttributes& attrs) const {
  const FlowStateEntry& e = table_[index_of(attrs)];
  return e.valid && e.attrs == attrs ? &e : nullptr;
}

std::size_t FiveTuplePolicy::active_flows(util::TimeUs now) const {
  return table_active(table_, now, threshold_);
}

void FiveTuplePolicy::clear() {
  for (FlowStateEntry& e : table_) e.valid = false;
}

HostPairPolicy::HostPairPolicy(std::size_t table_size, util::TimeUs threshold,
                               SflAllocator& sfl_alloc)
    : table_(table_size ? table_size : 1),
      threshold_(threshold),
      sfl_alloc_(sfl_alloc) {}

MapResult HostPairPolicy::map(const Datagram& d, util::TimeUs now) {
  // Only the address pair participates in identity: ports and protocol are
  // deliberately masked out.
  FlowAttributes attrs;
  attrs.source_address = d.attrs.source_address;
  attrs.destination_address = d.attrs.destination_address;
  const std::size_t index =
      cache_index(CacheHashKind::kCrc32, attrs.encode(), table_.size());
  return table_map(table_, index, attrs, now, d.body.size(), threshold_,
                   /*expire_in_mapper=*/true, sfl_alloc_, stats_);
}

std::size_t HostPairPolicy::sweep(util::TimeUs now) {
  return table_sweep(table_, now, threshold_, stats_);
}

std::size_t HostPairPolicy::active_flows(util::TimeUs now) const {
  return table_active(table_, now, threshold_);
}

void HostPairPolicy::clear() {
  for (FlowStateEntry& e : table_) e.valid = false;
}

MapResult PerDatagramPolicy::map(const Datagram&, util::TimeUs) {
  ++stats_.datagrams;
  ++stats_.flows_created;
  return {sfl_alloc_.allocate(), true};
}

}  // namespace fbs::core
