#include "fbs/keying.hpp"

#include <algorithm>
#include <array>

#include "crypto/md5.hpp"

namespace fbs::core {

util::Bytes derive_flow_key(crypto::Hash& hash, Sfl sfl,
                            util::BytesView master_key, const Principal& S,
                            const Principal& D) {
  util::ByteWriter sfl_bytes(8);
  sfl_bytes.u64(sfl);
  hash.reset();
  hash.update(sfl_bytes.view());
  hash.update(master_key);
  hash.update(S.address);
  hash.update(D.address);
  return hash.finish();
}

FlowCryptoContext make_flow_crypto_context(util::Bytes key,
                                           crypto::AlgorithmSuite suite,
                                           const crypto::Mac& mac_alg) {
  FlowCryptoContext ctx;
  ctx.key = std::move(key);
  ctx.suite = suite;
  if (suite.cipher == crypto::CipherAlgorithm::kDes3Ede &&
      ctx.key.size() >= crypto::Des::kKeySize) {
    // Stretch K_f to the 24-byte EDE key: K_f | MD5(K_f), truncated. The
    // derivation is deterministic from K_f alone, so both ends agree
    // without any extra negotiation.
    std::array<std::uint8_t, crypto::Des3::kKeySize> k3{};
    crypto::Md5 h;
    h.update(ctx.key);
    const util::Bytes ext = h.finish();
    const std::size_t head = std::min(ctx.key.size(), k3.size());
    std::copy_n(ctx.key.begin(), head, k3.begin());
    for (std::size_t i = head; i < k3.size(); ++i) k3[i] = ext[i - head];
    ctx.des3.emplace(util::BytesView(k3));
  } else if (suite.cipher != crypto::CipherAlgorithm::kNone &&
             ctx.key.size() >= crypto::Des::kKeySize) {
    const auto des_key =
        util::BytesView(ctx.key).subspan(0, crypto::Des::kKeySize);
    ctx.des.emplace(des_key);
    ctx.bitslice = crypto::DesBitsliceKeySchedule::from_key(des_key);
  }
  ctx.mac = mac_alg.make_context(ctx.key);
  return ctx;
}

void ensure_suite(FlowCryptoContext& ctx, crypto::AlgorithmSuite suite,
                  const crypto::Mac& mac_alg) {
  if (ctx.suite == suite && ctx.mac) return;
  ctx = make_flow_crypto_context(std::move(ctx.key), suite, mac_alg);
}

MasterKeyDaemon::MasterKeyDaemon(Principal self, bignum::Uint private_value,
                                 const crypto::DhGroup& group,
                                 const cert::Verifier& verifier,
                                 cert::DirectoryService& directory,
                                 const util::Clock& clock,
                                 std::size_t pvc_size, CacheHashKind hash,
                                 std::size_t pvc_ways)
    : self_(std::move(self)),
      private_value_(std::move(private_value)),
      group_(group),
      verifier_(verifier),
      directory_(directory),
      clock_(clock),
      pvc_(pvc_size, pvc_ways, hash) {
  jitter_rng_ = util::SplitMix64(jitter_seed(retry_.seed));
}

std::uint64_t MasterKeyDaemon::jitter_seed(std::uint64_t base) const {
  // FNV-1a over the principal address.
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint8_t b : self_.address) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return base ^ h;
}

void MasterKeyDaemon::pin_certificate(
    const cert::PublicValueCertificate& cert) {
  pvc_.insert(cert.subject, cert);
}

void MasterKeyDaemon::set_retry_policy(const RetryPolicy& policy) {
  retry_ = policy;
  jitter_rng_ = util::SplitMix64(jitter_seed(policy.seed));
}

void MasterKeyDaemon::clear_soft_state() {
  pvc_.clear();
  negative_.clear();
}

cert::FetchResult MasterKeyDaemon::fetch_with_retry(const Principal& peer) {
  const std::uint32_t attempts = retry_.max_attempts ? retry_.max_attempts : 1;
  util::TimeUs backoff = retry_.initial_backoff;  // legacy: next nominal wait
  util::TimeUs prev = retry_.initial_backoff;     // decorrelated: last wait
  for (std::uint32_t attempt = 1;; ++attempt) {
    ++stats_.directory_fetches;
    auto result = directory_.fetch(peer.address);
    if (!result.transient() || attempt >= attempts) return result;
    // Transient failure: back off (with jitter, so a population of daemons
    // retrying the same outage does not stampede) and try again.
    ++stats_.directory_retries;
    util::TimeUs wait;
    if (retry_.decorrelated) {
      // wait = U[initial, 3 * prev], capped. Each draw's upper bound chases
      // the previous *actual* wait, not a shared nominal schedule.
      const double lo = static_cast<double>(retry_.initial_backoff);
      double hi = 3.0 * static_cast<double>(prev);
      if (retry_.max_backoff > 0)
        hi = std::min(hi, static_cast<double>(retry_.max_backoff));
      hi = std::max(hi, lo);
      wait = static_cast<util::TimeUs>(
          lo + jitter_rng_.next_double() * (hi - lo));
      prev = wait;
    } else {
      wait = backoff;
      if (retry_.jitter > 0) {
        const double scale = 1.0 - retry_.jitter * jitter_rng_.next_double();
        wait = static_cast<util::TimeUs>(static_cast<double>(wait) * scale);
      }
      backoff = static_cast<util::TimeUs>(static_cast<double>(backoff) *
                                          retry_.multiplier);
      if (retry_.max_backoff > 0)
        backoff = std::min(backoff, retry_.max_backoff);
    }
    stats_.backoff_waited_us += static_cast<std::uint64_t>(wait);
    if (waiter_ && wait > 0) waiter_(wait);
  }
}

std::optional<cert::PublicValueCertificate>
MasterKeyDaemon::obtain_certificate(const Principal& peer) {
  if (const auto* cached = pvc_.lookup(peer.address)) {
    // Verify on every use; a stale or forged cache entry must not yield a
    // master key.
    if (verifier_.verify(*cached, clock_.now()) == cert::CertStatus::kValid)
      return *cached;
    ++stats_.verify_failures;
    pvc_.erase(peer.address);
  }

  // Negative cache: a peer that recently proved unresolvable is not worth
  // another fetch until its entry expires (prevents upcall storms when a
  // busy flow keeps asking for a dead peer).
  if (const auto neg = negative_.find(peer.address); neg != negative_.end()) {
    if (clock_.now() < neg->second) {
      ++stats_.negative_cache_hits;
      return std::nullopt;
    }
    negative_.erase(neg);
  }

  // PVC miss: fetch over the secure flow bypass (unauthenticated; the
  // signature check below is what makes the result trustworthy), retrying
  // transient directory failures with backoff.
  auto fetched = fetch_with_retry(peer);
  if (!fetched.ok()) {
    ++stats_.directory_failures;
    negative_[peer.address] = clock_.now() + retry_.negative_ttl;
    ++stats_.negative_cache_inserts;
    return std::nullopt;
  }
  if (verifier_.verify(*fetched, clock_.now()) != cert::CertStatus::kValid) {
    ++stats_.verify_failures;
    return std::nullopt;
  }
  pvc_.insert(peer.address, *fetched.cert);
  return std::move(fetched.cert);
}

std::optional<util::Bytes> MasterKeyDaemon::upcall(const Principal& peer) {
  ++stats_.upcalls;
  const auto cert = obtain_certificate(peer);
  if (!cert) return std::nullopt;
  ++stats_.master_keys_computed;
  const bignum::Uint peer_public =
      bignum::Uint::from_bytes_be(cert->public_value);
  return crypto::dh_shared_secret_bytes(group_, private_value_, peer_public);
}

std::optional<util::Bytes> KeyManager::master_key(const Principal& peer) {
  // One lock across lookup AND upcall: two shards racing on a cold peer
  // must not drive two upcalls (the daemon is single-threaded by design).
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto* cached = mkc_.lookup(peer.address)) return *cached;
  upcalls_.fetch_add(1, std::memory_order_relaxed);
  auto key = daemon_.upcall(peer);
  if (key) mkc_.insert(peer.address, *key);
  return key;
}

}  // namespace fbs::core
