#include "fbs/keying.hpp"

namespace fbs::core {

util::Bytes derive_flow_key(crypto::Hash& hash, Sfl sfl,
                            util::BytesView master_key, const Principal& S,
                            const Principal& D) {
  util::ByteWriter sfl_bytes(8);
  sfl_bytes.u64(sfl);
  hash.reset();
  hash.update(sfl_bytes.view());
  hash.update(master_key);
  hash.update(S.address);
  hash.update(D.address);
  return hash.finish();
}

MasterKeyDaemon::MasterKeyDaemon(Principal self, bignum::Uint private_value,
                                 const crypto::DhGroup& group,
                                 const cert::Verifier& verifier,
                                 cert::DirectoryService& directory,
                                 const util::Clock& clock,
                                 std::size_t pvc_size, CacheHashKind hash,
                                 std::size_t pvc_ways)
    : self_(std::move(self)),
      private_value_(std::move(private_value)),
      group_(group),
      verifier_(verifier),
      directory_(directory),
      clock_(clock),
      pvc_(pvc_size, pvc_ways, hash) {}

void MasterKeyDaemon::pin_certificate(
    const cert::PublicValueCertificate& cert) {
  pvc_.insert(cert.subject, cert);
}

std::optional<cert::PublicValueCertificate>
MasterKeyDaemon::obtain_certificate(const Principal& peer) {
  if (const auto* cached = pvc_.lookup(peer.address)) {
    // Verify on every use; a stale or forged cache entry must not yield a
    // master key.
    if (verifier_.verify(*cached, clock_.now()) == cert::CertStatus::kValid)
      return *cached;
    ++stats_.verify_failures;
    pvc_.erase(peer.address);
  }

  // PVC miss: fetch over the secure flow bypass (unauthenticated; the
  // signature check below is what makes the result trustworthy).
  ++stats_.directory_fetches;
  auto fetched = directory_.fetch(peer.address);
  if (!fetched) {
    ++stats_.directory_failures;
    return std::nullopt;
  }
  if (verifier_.verify(*fetched, clock_.now()) != cert::CertStatus::kValid) {
    ++stats_.verify_failures;
    return std::nullopt;
  }
  pvc_.insert(peer.address, *fetched);
  return fetched;
}

std::optional<util::Bytes> MasterKeyDaemon::upcall(const Principal& peer) {
  ++stats_.upcalls;
  const auto cert = obtain_certificate(peer);
  if (!cert) return std::nullopt;
  ++stats_.master_keys_computed;
  const bignum::Uint peer_public =
      bignum::Uint::from_bytes_be(cert->public_value);
  return crypto::dh_shared_secret_bytes(group_, private_value_, peer_public);
}

std::optional<util::Bytes> KeyManager::master_key(const Principal& peer) {
  if (const auto* cached = mkc_.lookup(peer.address)) return *cached;
  ++upcalls_;
  auto key = daemon_.upcall(peer);
  if (key) mkc_.insert(peer.address, *key);
  return key;
}

}  // namespace fbs::core
