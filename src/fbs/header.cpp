#include "fbs/header.hpp"

namespace fbs::core {

namespace {
constexpr std::uint8_t kFlagSecret = 0x01;
// The three unassigned flag bits. Every encoder writes them as zero; the
// decoders reject anything else, both to keep the wire encoding canonical
// (one datagram, one encoding) and so future assignments of these bits
// cannot be silently ignored by old receivers.
constexpr std::uint8_t kFlagsReservedMask = 0x0E;
constexpr std::uint8_t kVersionShift = 4;
constexpr std::uint8_t kVersion = 1;

std::uint32_t load_be32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | p[3];
}

std::uint64_t load_be64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_be32(p)) << 32 | load_be32(p + 4);
}

void append_be32(util::Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
}  // namespace

util::Bytes FbsHeader::serialize() const {
  util::ByteWriter w(wire_size());
  std::uint8_t flags = static_cast<std::uint8_t>(kVersion << kVersionShift);
  if (secret) flags |= kFlagSecret;
  w.u8(flags);
  w.u8(crypto::encode_suite(suite));
  w.u64(sfl);
  w.u32(confounder);
  w.u32(timestamp_minutes);
  w.bytes(mac);
  return w.take();
}

std::optional<FbsHeaderView> FbsHeaderView::parse(util::BytesView wire) {
  if (wire.size() < FbsHeader::kFixedSize) return std::nullopt;
  const std::uint8_t flags = wire[0];
  if ((flags >> kVersionShift) != kVersion) return std::nullopt;
  if (flags & kFlagsReservedMask) return std::nullopt;
  const auto suite = crypto::decode_suite(wire[1]);
  if (!suite) return std::nullopt;
  const std::size_t mac_n = crypto::mac_size(suite->mac);
  if (wire.size() < FbsHeader::kFixedSize + mac_n) return std::nullopt;

  FbsHeaderView out;
  out.suite = *suite;
  out.secret = flags & kFlagSecret;
  out.sfl = load_be64(wire.data() + 2);
  out.confounder = load_be32(wire.data() + 10);
  out.timestamp_minutes = load_be32(wire.data() + 14);
  out.mac = wire.subspan(FbsHeader::kFixedSize, mac_n);
  out.body = wire.subspan(FbsHeader::kFixedSize + mac_n);
  return out;
}

std::uint8_t FbsHeaderView::flags_byte() const {
  std::uint8_t flags = static_cast<std::uint8_t>(kVersion << kVersionShift);
  if (secret) flags |= kFlagSecret;
  return flags;
}

void FbsHeaderView::serialize_into(util::Bytes& out) const {
  out.push_back(flags_byte());
  out.push_back(crypto::encode_suite(suite));
  append_be32(out, static_cast<std::uint32_t>(sfl >> 32));
  append_be32(out, static_cast<std::uint32_t>(sfl));
  append_be32(out, confounder);
  append_be32(out, timestamp_minutes);
  out.insert(out.end(), mac.begin(), mac.end());
}

std::optional<FbsHeader::ParsedOut> FbsHeader::parse(util::BytesView wire) {
  const auto view = FbsHeaderView::parse(wire);
  if (!view) return std::nullopt;
  ParsedOut out;
  out.header.suite = view->suite;
  out.header.secret = view->secret;
  out.header.sfl = view->sfl;
  out.header.confounder = view->confounder;
  out.header.timestamp_minutes = view->timestamp_minutes;
  out.header.mac.assign(view->mac.begin(), view->mac.end());
  out.body.assign(view->body.begin(), view->body.end());
  return out;
}

std::size_t FbsHeader::overhead(crypto::AlgorithmSuite suite) {
  return kFixedSize + crypto::mac_size(suite.mac);
}

}  // namespace fbs::core
