#include "fbs/header.hpp"

namespace fbs::core {

namespace {
constexpr std::uint8_t kFlagSecret = 0x01;
constexpr std::uint8_t kVersionShift = 4;
constexpr std::uint8_t kVersion = 1;
}  // namespace

util::Bytes FbsHeader::serialize() const {
  util::ByteWriter w(wire_size());
  std::uint8_t flags = static_cast<std::uint8_t>(kVersion << kVersionShift);
  if (secret) flags |= kFlagSecret;
  w.u8(flags);
  w.u8(crypto::encode_suite(suite));
  w.u64(sfl);
  w.u32(confounder);
  w.u32(timestamp_minutes);
  w.bytes(mac);
  return w.take();
}

std::optional<FbsHeader::ParsedOut> FbsHeader::parse(util::BytesView wire) {
  util::ByteReader r(wire);
  const auto flags = r.u8();
  const auto suite_wire = r.u8();
  if (!flags || !suite_wire) return std::nullopt;
  if ((*flags >> kVersionShift) != kVersion) return std::nullopt;
  const auto suite = crypto::decode_suite(*suite_wire);
  if (!suite) return std::nullopt;

  ParsedOut out;
  out.header.suite = *suite;
  out.header.secret = *flags & kFlagSecret;
  const auto sfl = r.u64();
  const auto confounder = r.u32();
  const auto timestamp = r.u32();
  const auto mac = r.bytes(crypto::mac_size(suite->mac));
  if (!sfl || !confounder || !timestamp || !mac) return std::nullopt;
  out.header.sfl = *sfl;
  out.header.confounder = *confounder;
  out.header.timestamp_minutes = *timestamp;
  out.header.mac = *mac;
  out.body = r.rest();
  return out;
}

std::size_t FbsHeader::overhead(crypto::AlgorithmSuite suite) {
  return kFixedSize + crypto::mac_size(suite.mac);
}

}  // namespace fbs::core
