// The mapping of FBS to IP (Section 7).
//
// Installs FBSSend()/FBSReceive() as the IpStack security hooks, exactly
// where the paper patched 4.4BSD: output between route selection and
// fragmentation, input between reassembly and protocol dispatch. The FBS
// header is inserted between the IP header and the transport payload ("a
// short-cut form of IP encapsulation"); forwarding routers see nothing
// strange, and `header_overhead` feeds the tcp_output.c segment-size fix.
//
// Raw IP (ICMP/IGMP) is out of scope as in the paper (footnote 10); only
// TCP and UDP packets are protected, others pass unmodified. Traffic
// to/from "bypass hosts" (the certificate directory) travels the secure
// flow bypass of Figure 5 and is never FBS-processed -- otherwise fetching
// a certificate would itself require a certificate.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <set>

#include "fbs/engine.hpp"
#include "fbs/pipeline.hpp"
#include "net/stack.hpp"

namespace fbs::core {

struct IpMappingConfig {
  FbsConfig fbs;

  /// Decides per-datagram confidentiality (the `secret` flag of Figure 4,
  /// "determined by the security flow policy"). Null means encrypt all.
  std::function<bool(const FlowAttributes&)> secret_policy;

  /// Peers exempt from FBS (the secure flow bypass).
  std::set<net::Ipv4Address> bypass_hosts;

  /// Raw IP handling (footnote 10). false = the paper's implementation:
  /// non-TCP/UDP packets pass unprotected. true = "raw IP can be considered
  /// as host-level flows": ICMP/IGMP/etc. are protected under one flow per
  /// host pair.
  bool protect_raw_ip = false;

  /// Parallel receive pipeline. 0 workers (default) keeps the synchronous
  /// input hook: every receive runs inline on the stack's thread, exactly
  /// the paper's in-kernel shape. >0 installs a deferred input hook that
  /// routes FBS datagrams through a DatagramPipeline; the owner must then
  /// call drain_pipeline() (or drain_pipeline_all()) from the stack's
  /// thread to complete delivery. Pair with fbs.shards > 1 or workers will
  /// be clamped to the shard count.
  std::size_t pipeline_workers = 0;
  std::size_t pipeline_ingress_capacity = 1024;
  std::size_t pipeline_egress_capacity = 4096;
  /// Burst size for the pipeline's ring transfers and pooled buffers
  /// (PipelineConfig::batch); 0 pool buffers means auto-sized.
  std::size_t pipeline_batch = 32;
  std::size_t pipeline_pool_buffers = 0;
  std::size_t pipeline_pool_buffer_bytes = 2048;
};

class FbsIpMapping {
 public:
  /// Atomic: in pipeline mode rejection counting happens on worker threads
  /// while the stack thread counts bypasses and acceptances.
  struct Counters {
    std::atomic<std::uint64_t> out_protected{0};
    std::atomic<std::uint64_t> out_bypassed{0};
    std::atomic<std::uint64_t> out_raw_ip{0};   // non-TCP/UDP, passed through
    std::atomic<std::uint64_t> out_dropped{0};  // master key unavailable
    std::atomic<std::uint64_t> in_accepted{0};
    std::atomic<std::uint64_t> in_bypassed{0};
    std::atomic<std::uint64_t> in_raw_ip{0};
    std::atomic<std::uint64_t> in_deferred{0};  // handed to the pipeline
    // Indexed by ReceiveError.
    std::array<std::atomic<std::uint64_t>, 6> in_rejected{};
  };

  FbsIpMapping(net::IpStack& stack, const IpMappingConfig& config,
               KeyManager& keys, const util::Clock& clock,
               util::RandomSource& rng);

  FbsEndpoint& endpoint() { return endpoint_; }
  const Counters& counters() const { return counters_; }

  /// Engaged when config.pipeline_workers > 0.
  DatagramPipeline* pipeline() { return pipeline_.get(); }

  /// Deliver every pipeline result that is ready (no-op in sync mode).
  /// Call from the stack's thread -- results complete via IpStack::deliver,
  /// which is single-writer. Returns the number delivered.
  std::size_t drain_pipeline();
  /// Deliver until nothing the pipeline holds remains in flight.
  void drain_pipeline_all();

  /// Publish the endpoint's metrics plus the IP-layer counters as pull
  /// sources under `<prefix>.` names.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

  /// Total worst-case wire overhead per packet (for MTU budgeting):
  /// security flow header plus block-cipher padding.
  std::size_t header_overhead() const {
    return endpoint_.max_wire_overhead();
  }

 private:
  bool on_output(net::Ipv4Header& header, util::Bytes& payload);
  bool on_input(const net::Ipv4Header& header, util::Bytes& payload);
  net::IpStack::DeferredVerdict on_deferred(const net::Ipv4Header& header,
                                            util::Bytes& payload);
  static FlowAttributes attributes_of(const net::Ipv4Header& header,
                                      util::BytesView payload);

  IpMappingConfig config_;
  net::IpStack& stack_;
  FbsEndpoint endpoint_;
  Counters counters_;
  std::unique_ptr<DatagramPipeline> pipeline_;  // null in sync mode

  /// Wire/body staging reused across packets so the steady-state hook path
  /// (flow-cache hit, warm buffers) performs no heap allocations.
  util::Bytes scratch_wire_;
  util::Bytes scratch_body_;
};

}  // namespace fbs::core
