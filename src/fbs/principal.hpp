// Principals and datagrams, the two layer-neutral nouns of the abstract FBS
// protocol (Section 5.2): "the principals could be network interfaces on
// hosts, the hosts themselves, network protocol layers, applications, or end
// users" -- the only requirement is unique addressability. A Principal is
// therefore an opaque address (plus a display name); the IP mapping in
// ip_map.hpp uses 4-byte IPv4 addresses.
#pragma once

#include <cstdint>
#include <string>

#include "net/ip.hpp"
#include "util/bytes.hpp"

namespace fbs::core {

struct Principal {
  util::Bytes address;  // unique within the datagram service
  std::string name;     // display only; not part of identity

  static Principal from_ipv4(net::Ipv4Address ip);
  net::Ipv4Address ipv4() const;  // valid only for 4-byte addresses

  /// Rewrite this principal in place as `ip`, reusing the address buffer's
  /// storage (no allocation once warm). The pipeline calls this once per
  /// datagram on scratch principals, where from_ipv4's fresh vector -- and
  /// its display-name formatting -- would be a per-datagram heap hit.
  void assign_ipv4(net::Ipv4Address ip);

  bool operator==(const Principal& o) const { return address == o.address; }
  auto operator<=>(const Principal& o) const { return address <=> o.address; }
};

/// Security flow label: the opaque per-flow identifier produced by the FAM
/// and carried in every datagram's security flow header (Section 5.1).
using Sfl = std::uint64_t;

/// Attributes the flow association mechanism may classify on. The five-tuple
/// fields mirror Figure 7's FSTEntry; `aux` carries layer-specific extras
/// (process id, application conversation id, ...) for non-IP mappings.
struct FlowAttributes {
  std::uint8_t protocol = 0;
  std::uint32_t source_address = 0;
  std::uint16_t source_port = 0;
  std::uint32_t destination_address = 0;
  std::uint16_t destination_port = 0;
  std::uint64_t aux = 0;

  bool operator==(const FlowAttributes&) const = default;

  /// Canonical encoding, used as cache/table hash input.
  util::Bytes encode() const;

  /// Encode into a reused buffer (the send fast path probes the combined
  /// FST+TFKC with this every datagram; a warm buffer never reallocates).
  void encode_into(util::Bytes& out) const;
};

/// The uniform datagram structure entering the FBS layer (Section 5.2):
/// source and destination principals, and a body carrying the higher-layer
/// payload. `attrs` is what the policy modules are allowed to inspect.
struct Datagram {
  Principal source;
  Principal destination;
  FlowAttributes attrs;
  util::Bytes body;
};

}  // namespace fbs::core
