#include "fbs/replay.hpp"

namespace fbs::core {

void FreshnessChecker::prune(std::uint32_t now_minutes) {
  const std::uint32_t floor =
      now_minutes > window_ ? now_minutes - window_ : 0;
  while (!seen_.empty() && seen_.begin()->first < floor)
    seen_.erase(seen_.begin());
}

FreshnessChecker::Verdict FreshnessChecker::check(
    std::uint32_t timestamp_minutes, util::BytesView mac) {
  const std::uint32_t now_minutes = util::to_header_minutes(clock_.now());
  const std::uint32_t lo = now_minutes > window_ ? now_minutes - window_ : 0;
  const std::uint32_t hi = now_minutes + window_;
  if (timestamp_minutes < lo || timestamp_minutes > hi) {
    ++stats_.stale;
    return Verdict::kStale;
  }
  if (strict_replay_) {
    prune(now_minutes);
    const auto bucket = seen_.find(timestamp_minutes);
    if (bucket != seen_.end() &&
        bucket->second.count(util::Bytes(mac.begin(), mac.end()))) {
      ++stats_.replays;
      return Verdict::kReplay;
    }
  }
  ++stats_.fresh;
  return Verdict::kFresh;
}

bool FreshnessChecker::seen(std::uint32_t timestamp_minutes,
                            util::BytesView mac) const {
  if (!strict_replay_) return false;
  const auto bucket = seen_.find(timestamp_minutes);
  return bucket != seen_.end() &&
         bucket->second.count(util::Bytes(mac.begin(), mac.end())) > 0;
}

void FreshnessChecker::commit(std::uint32_t timestamp_minutes,
                              util::BytesView mac) {
  if (!strict_replay_) return;
  prune(util::to_header_minutes(clock_.now()));
  seen_[timestamp_minutes].insert(util::Bytes(mac.begin(), mac.end()));
}

}  // namespace fbs::core
