#include "fbs/replay.hpp"

namespace fbs::core {

FreshnessChecker::Verdict FreshnessChecker::check(
    std::uint32_t timestamp_minutes, util::BytesView mac) {
  const std::uint32_t now_minutes = util::to_header_minutes(clock_.now());
  if (!in_window(timestamp_minutes, now_minutes)) {
    ++stats_.stale;
    return Verdict::kStale;
  }
  if (strict_replay_) {
    if (const Bucket* b = bucket_for(timestamp_minutes);
        b && b->macs.find(MacKey::of(mac))) {
      ++stats_.replays;
      return Verdict::kReplay;
    }
  }
  ++stats_.fresh;
  return Verdict::kFresh;
}

bool FreshnessChecker::seen(std::uint32_t timestamp_minutes,
                            util::BytesView mac) const {
  if (!strict_replay_) return false;
  const Bucket* b = bucket_for(timestamp_minutes);
  return b && b->macs.find(MacKey::of(mac)) != nullptr;
}

void FreshnessChecker::commit(std::uint32_t timestamp_minutes,
                              util::BytesView mac) {
  if (!strict_replay_) return;
  // Out-of-window commits are dropped: letting a stale minute claim a ring
  // slot could evict a bucket an in-window minute is still using.
  if (!in_window(timestamp_minutes, util::to_header_minutes(clock_.now())))
    return;
  Bucket& b = ring_[timestamp_minutes % ring_.size()];
  if (b.minute != timestamp_minutes) {
    // The slot's previous minute slid out of the window; repurpose in place
    // (the FlatMap keeps its slot array, so a steady-state checker never
    // reallocates).
    b.minute = timestamp_minutes;
    b.macs.clear();
  }
  b.macs.try_emplace(MacKey::of(mac), 1);
}

}  // namespace fbs::core
