// An application-layer mapping of FBS.
//
// The abstract protocol is deliberately layer-neutral (Section 3: "it
// should not assume that it will operate in a particular stack or a
// specific protocol layer"); Section 4: "At the application layer,
// datagrams belonging to the same application 'conversation' constitute a
// flow", and principals may be applications or users rather than hosts.
//
// This mapping realizes that: principals are (host, application-port)
// pairs, each with its own Diffie-Hellman keypair and certificate -- so two
// applications on the same host have *different* master keys with any peer,
// a granularity the IP mapping cannot offer. Flows are application
// conversations, named by a 64-bit conversation id carried (protected) in
// every message and fed to the FAM as the classification attribute. The
// insecure datagram transport underneath is plain UDP.
#pragma once

#include <functional>

#include "fbs/engine.hpp"
#include "net/udp.hpp"

namespace fbs::core {

/// Principal identity for an application endpoint: 4-byte IPv4 address
/// followed by the 2-byte application port.
Principal app_principal(net::Ipv4Address host, std::uint16_t app_port);

class AppEndpoint {
 public:
  /// Received application messages: the authenticated source principal, the
  /// conversation they belong to, and the payload.
  using Handler = std::function<void(const Principal& from,
                                     std::uint64_t conversation,
                                     util::BytesView data)>;

  /// Binds `app_port` on `udp`. `keys` must resolve *application*
  /// principals (app_principal()-shaped addresses).
  AppEndpoint(net::UdpService& udp, net::Ipv4Address host,
              std::uint16_t app_port, KeyManager& keys,
              const util::Clock& clock, util::RandomSource& rng,
              const FbsConfig& config = {});

  void on_message(Handler handler) { handler_ = std::move(handler); }

  /// Send within `conversation`; each conversation is its own flow (and
  /// hence its own key).
  bool send(net::Ipv4Address host, std::uint16_t app_port,
            std::uint64_t conversation, util::BytesView data,
            bool secret = true);

  const Principal& self() const { return endpoint_.self(); }
  FbsEndpoint& fbs() { return endpoint_; }

  struct Counters {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t rejected = 0;
    std::uint64_t malformed = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  void on_datagram(net::Ipv4Address source, std::uint16_t source_port,
                   util::Bytes payload);

  net::UdpService& udp_;
  std::uint16_t app_port_;
  FbsEndpoint endpoint_;
  Handler handler_;
  Counters counters_;
};

}  // namespace fbs::core
