// The parallel receive pipeline: a worker pool draining per-shard ingress
// rings through the re-entrant engine into a single-consumer egress ring.
//
//   submit(header, wire) / submit_batch(header, wires)    [any thread]
//     -> ingress ring of the wire's flow domain (full ring = counted drop,
//        like a NIC ring overflow). submit_batch groups a burst by shard
//        first, so each touched ring is locked once per burst.
//   worker w drains the rings of shards s where s mod workers == w,
//   popping up to config.batch items per ring visit
//     -> FbsEndpoint::unprotect_burst_into(ctx, ...) with w's own
//        WorkContext and body buffers from the worker's BufferPool lane:
//        the whole popped burst enters the engine at once, so eligible
//        DES-CBC ciphertexts are decrypted cross-datagram by the 64-wide
//        bitsliced engine before per-datagram MAC verification
//     -> accepted bodies go to the egress ring in one batched (blocking)
//        push per burst -- work already paid for its cryptography;
//        rejections are counted and reported
//   drain(sink)                             [one thread -- the stack's]
//     -> pops results in bursts and hands them to the sink (IpStack::deliver)
//
// The static shard->worker assignment is what preserves per-flow ordering
// without any cross-worker coordination: every datagram of a flow hashes to
// one shard (see domain.hpp), one worker owns that shard's ring, and the
// ring is FIFO. Distinct flows on distinct shards proceed fully in
// parallel. Delivery order ACROSS flows is whatever the egress interleaving
// yields -- datagram semantics, the paper's own ground rule.
//
// Buffers: each worker acquires plaintext bodies from its own BufferPool
// lane and releases consumed wires back into it, so the steady-state hot
// path performs zero heap allocations (enforced by test_zero_alloc) and
// buffers never migrate cores. drain() hands body ownership to the sink;
// a caller that consumes bodies in place can recycle() them back.
//
// Accounting. Every submitted datagram ends in exactly one terminal
// bucket, so once in_flight() is zero:
//
//   submitted == backpressure_drops + rejected + drained
//                + egress_dropped + shutdown_discards
//
// and accepted == drained + egress_dropped (acceptance is the crypto
// verdict; egress_dropped are accepted results abandoned because shutdown
// cancelled a blocking egress push). shutdown_discards are ingress items
// still queued when stop() ran -- accounting them is what lets drain_all()
// terminate after a stop instead of spinning on in_flight forever.
//
// Per-worker busy time is accounted with a per-thread CPU clock (see
// busy_clock() for which one), so a bench can compute the critical-path
// aggregate throughput (bytes / max worker busy time) even on a machine
// with fewer cores than workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fbs/engine.hpp"
#include "net/ip.hpp"
#include "obs/metrics.hpp"
#include "util/buffer_pool.hpp"
#include "util/ring.hpp"
#include "util/worker_pool.hpp"

namespace fbs::core {

struct PipelineConfig {
  /// Worker threads. Clamped to the endpoint's shard count (a shard is
  /// single-consumer; more workers than shards would idle). 0 means 1.
  std::size_t workers = 1;
  /// Capacity of each per-shard ingress ring; a full ring drops (counted).
  std::size_t ingress_capacity = 1024;
  /// Capacity of the shared egress ring; full blocks the producing worker.
  std::size_t egress_capacity = 4096;
  /// Max items moved per ring visit: the unit over which mutex acquisitions,
  /// condvar signals and egress pushes are amortized. 0 means 1.
  std::size_t batch = 32;
  /// Buffer pool sizing for the per-worker body/wire recycling. 0 buffers
  /// means auto: enough for every worker to keep two bursts in flight.
  std::size_t pool_buffers = 0;
  std::size_t pool_buffer_bytes = 2048;
};

/// Owns the worker pool, the rings and the buffer pool; borrows the
/// endpoint. Construction starts the workers; stop() (or destruction)
/// stops them and accounts whatever was still queued. submit()/
/// submit_batch() may be called from any thread; drain()/drain_all()/
/// recycle() must be called from one thread at a time (the egress ring's
/// single consumer).
class DatagramPipeline {
 public:
  struct Stats {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> backpressure_drops{0};  // ingress ring full
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> drained{0};
    /// Accepted results abandoned because shutdown cancelled a blocking
    /// egress push (ring full, drain never came). Distinct from
    /// backpressure_drops: these already passed the cryptography.
    std::atomic<std::uint64_t> egress_dropped{0};
    /// Ingress items still queued when the pipeline stopped; drained
    /// unprocessed and accounted so in_flight reaches zero.
    std::atomic<std::uint64_t> shutdown_discards{0};
  };

  /// Called on a worker thread for every rejected datagram (counting; must
  /// be thread-safe, cheap, and must not call back into the pipeline).
  using RejectHook = std::function<void(ReceiveError)>;
  /// Receives each accepted (header, plaintext body) from drain().
  using Sink =
      std::function<void(const net::Ipv4Header&, util::Bytes body)>;

  DatagramPipeline(FbsEndpoint& endpoint, const PipelineConfig& config,
                   RejectHook on_reject = nullptr);
  ~DatagramPipeline();

  DatagramPipeline(const DatagramPipeline&) = delete;
  DatagramPipeline& operator=(const DatagramPipeline&) = delete;

  /// Hand a received FBS wire (post-reassembly) to the workers. False means
  /// the owning shard's ingress ring was full and the datagram was dropped
  /// (counted in stats().backpressure_drops) -- receive-side backpressure.
  bool submit(const net::Ipv4Header& header, util::Bytes wire);

  /// Batch submit: every wire shares `header` (one source host -- the shape
  /// a NIC receive burst has). Wires are grouped by shard so each touched
  /// ingress ring is locked and its worker woken once per burst, and
  /// submission order within a flow is preserved. Accepted wires are
  /// moved from; returns how many were accepted (the rest are counted
  /// backpressure drops and left untouched for the caller to retry).
  std::size_t submit_batch(const net::Ipv4Header& header,
                           std::span<util::Bytes> wires);

  /// Pop every currently ready result into `sink`; returns how many.
  std::size_t drain(const Sink& sink);

  /// Drain until every submitted datagram has been rejected, delivered or
  /// accounted by stop(). Safe to call before or after stop().
  void drain_all(const Sink& sink);

  /// Stop the workers and account every item still queued at that moment:
  /// residual ingress items become shutdown_discards, results stuck behind
  /// a full egress become egress_dropped. Idempotent; called by the
  /// destructor. After stop(), drain()/drain_all() still deliver whatever
  /// reached the egress ring, and new submits are refused (counted as
  /// backpressure).
  void stop();

  /// Return a consumed body buffer to the pool (drain-thread lane), so a
  /// caller that copies or parses bodies in place can keep the whole
  /// receive loop allocation-free. Call only from the drain thread.
  void recycle(util::Bytes&& buffer) {
    buffers_.release(drain_lane_, std::move(buffer));
  }

  /// Datagrams submitted but not yet rejected, drained or accounted.
  std::size_t in_flight() const {
    const auto v = in_flight_.load(std::memory_order_acquire);
    return v > 0 ? static_cast<std::size_t>(v) : 0;
  }

  std::size_t worker_count() const { return workers_.size(); }
  /// Cumulative thread-CPU time worker `w` has spent inside the engine.
  std::uint64_t worker_busy_ns(std::size_t w) const {
    return workers_[w]->busy_ns.load(std::memory_order_relaxed);
  }
  /// Which clock backs worker_busy_ns(): "thread-cputime" (Linux,
  /// CLOCK_THREAD_CPUTIME_ID) or "process-cputime" (the std::clock
  /// fallback -- still CPU time, never wall time, so a descheduled worker
  /// is never charged for its neighbors' work; but it sums all threads, so
  /// per-worker attribution is approximate).
  static std::string_view busy_clock();
  const Stats& stats() const { return stats_; }

  /// Ring-level ingress drop attribution. The total tracks
  /// stats().backpressure_drops (both count full-ring rejections; the ring
  /// counts at the source, submit() counts the policy decision), and the
  /// per-shard view pinpoints which flow domain is overloaded.
  std::uint64_t ingress_dropped() const {
    std::uint64_t n = 0;
    for (const auto& ring : ingress_) n += ring->dropped();
    return n;
  }
  std::uint64_t ingress_dropped(std::size_t shard) const {
    return ingress_[shard]->dropped();
  }
  std::size_t shard_count() const { return ingress_.size(); }

  /// The hot-path buffer pool (stats: heap fallbacks, high water, ...).
  const util::BufferPool& buffer_pool() const { return buffers_; }

  /// Publish pipeline counters, buffer-pool stats and per-worker busy time
  /// under `<prefix>.`.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

 private:
  struct Item {
    net::Ipv4Header header;
    util::Bytes wire;
  };
  struct Result {
    net::Ipv4Header header;
    util::Bytes body;
  };
  /// One worker's private world: its WorkContext (engine re-entrancy), its
  /// scratch principal, batch staging, the shards it owns, and its wakeup
  /// channel. `batch` and `results` are reserved to config.batch once so
  /// bursts never allocate.
  struct Worker {
    std::size_t index = 0;  // also this worker's BufferPool lane
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<std::int64_t> queued{0};  // items across this worker's rings
    std::atomic<std::uint64_t> busy_ns{0};
    WorkContext ctx;
    std::vector<Item> batch;      // pop_batch staging
    std::vector<Result> results;  // egress staging, flushed per burst
    std::vector<std::size_t> shards;
    /// Burst staging for unprotect_burst_into: per-item principals (storage
    /// reused across bursts), the pool bodies the plaintexts land in, and
    /// the engine's burst descriptors. Sized to config.batch once.
    std::vector<Principal> sources;
    std::vector<util::Bytes> bodies;
    std::vector<ReceiveBurstItem> burst;
  };

  void worker_loop(std::size_t w, const std::atomic<bool>& stop);
  void process_burst(Worker& wk);
  void flush_results(Worker& wk);
  void discard_residual_ingress(Worker& wk);
  void account_stranded(std::size_t shard);

  FbsEndpoint& endpoint_;
  PipelineConfig config_;
  RejectHook on_reject_;
  Stats stats_;
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<bool> stopped_{false};
  std::vector<std::unique_ptr<util::BoundedMpscRing<Item>>> ingress_;
  util::BoundedMpscRing<Result> egress_;
  std::vector<std::unique_ptr<Worker>> workers_;
  util::BufferPool buffers_;
  std::size_t drain_lane_ = 0;      // lane workers_.size(): the drain thread
  std::vector<Result> drain_buf_;   // drain() staging, single consumer
  util::WorkerPool pool_;  // last: joins before the state above dies
};

}  // namespace fbs::core
