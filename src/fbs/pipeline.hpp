// The parallel receive pipeline: a worker pool draining per-shard ingress
// rings through the re-entrant engine into a single-consumer egress ring.
//
//   submit(header, wire)                    [any thread]
//     -> ingress ring of the wire's flow domain (full ring = counted drop,
//        like a NIC ring overflow)
//   worker w drains the rings of shards s where s mod workers == w
//     -> FbsEndpoint::unprotect_into(ctx, ...) with w's own WorkContext
//     -> accepted bodies go to the egress ring (blocking: work already
//        paid for its cryptography); rejections are counted and reported
//   drain(sink)                             [one thread -- the stack's]
//     -> pops results and hands them to the sink (IpStack::deliver)
//
// The static shard->worker assignment is what preserves per-flow ordering
// without any cross-worker coordination: every datagram of a flow hashes to
// one shard (see domain.hpp), one worker owns that shard's ring, and the
// ring is FIFO. Distinct flows on distinct shards proceed fully in
// parallel. Delivery order ACROSS flows is whatever the egress interleaving
// yields -- datagram semantics, the paper's own ground rule.
//
// Per-worker busy time is accounted with the thread CPU clock, so a bench
// can compute the critical-path aggregate throughput (bytes / max worker
// busy time) even on a machine with fewer cores than workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fbs/engine.hpp"
#include "net/ip.hpp"
#include "obs/metrics.hpp"
#include "util/ring.hpp"
#include "util/worker_pool.hpp"

namespace fbs::core {

struct PipelineConfig {
  /// Worker threads. Clamped to the endpoint's shard count (a shard is
  /// single-consumer; more workers than shards would idle). 0 means 1.
  std::size_t workers = 1;
  /// Capacity of each per-shard ingress ring; a full ring drops (counted).
  std::size_t ingress_capacity = 1024;
  /// Capacity of the shared egress ring; full blocks the producing worker.
  std::size_t egress_capacity = 4096;
};

/// Owns the worker pool and the rings; borrows the endpoint. Construction
/// starts the workers, destruction (or the owner's) stops and joins them.
/// submit() may be called from any thread; drain()/drain_all() must be
/// called from one thread at a time (the egress ring's single consumer).
class DatagramPipeline {
 public:
  struct Stats {
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> backpressure_drops{0};  // ingress ring full
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> drained{0};
  };

  /// Called on a worker thread for every rejected datagram (counting; must
  /// be thread-safe, cheap, and must not call back into the pipeline).
  using RejectHook = std::function<void(ReceiveError)>;
  /// Receives each accepted (header, plaintext body) from drain().
  using Sink =
      std::function<void(const net::Ipv4Header&, util::Bytes body)>;

  DatagramPipeline(FbsEndpoint& endpoint, const PipelineConfig& config,
                   RejectHook on_reject = nullptr);
  ~DatagramPipeline();

  DatagramPipeline(const DatagramPipeline&) = delete;
  DatagramPipeline& operator=(const DatagramPipeline&) = delete;

  /// Hand a received FBS wire (post-reassembly) to the workers. False means
  /// the owning shard's ingress ring was full and the datagram was dropped
  /// (counted in stats().backpressure_drops) -- receive-side backpressure.
  bool submit(const net::Ipv4Header& header, util::Bytes wire);

  /// Pop every currently ready result into `sink`; returns how many.
  std::size_t drain(const Sink& sink);

  /// Drain until every submitted datagram has been rejected or delivered.
  /// Workers must be running (call before the pipeline is destroyed).
  void drain_all(const Sink& sink);

  /// Datagrams submitted but not yet rejected or drained.
  std::size_t in_flight() const {
    const auto v = in_flight_.load(std::memory_order_acquire);
    return v > 0 ? static_cast<std::size_t>(v) : 0;
  }

  std::size_t worker_count() const { return workers_.size(); }
  /// Cumulative thread-CPU time worker `w` has spent inside the engine.
  std::uint64_t worker_busy_ns(std::size_t w) const {
    return workers_[w]->busy_ns.load(std::memory_order_relaxed);
  }
  const Stats& stats() const { return stats_; }

  /// Ring-level ingress drop attribution. The total tracks
  /// stats().backpressure_drops (both count full-ring rejections; the ring
  /// counts at the source, submit() counts the policy decision), and the
  /// per-shard view pinpoints which flow domain is overloaded.
  std::uint64_t ingress_dropped() const {
    std::uint64_t n = 0;
    for (const auto& ring : ingress_) n += ring->dropped();
    return n;
  }
  std::uint64_t ingress_dropped(std::size_t shard) const {
    return ingress_[shard]->dropped();
  }
  std::size_t shard_count() const { return ingress_.size(); }

  /// Publish pipeline counters and per-worker busy time under `<prefix>.`.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

 private:
  struct Item {
    net::Ipv4Header header;
    Principal source;
    util::Bytes wire;
  };
  struct Result {
    net::Ipv4Header header;
    util::Bytes body;
  };
  /// One worker's private world: its WorkContext (engine re-entrancy), its
  /// body staging buffer, the shards it owns, and its wakeup channel.
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<std::int64_t> queued{0};  // items across this worker's rings
    std::atomic<std::uint64_t> busy_ns{0};
    WorkContext ctx;
    util::Bytes body;
    std::vector<std::size_t> shards;
  };

  void worker_loop(std::size_t w, const std::atomic<bool>& stop);
  void process(Worker& wk, Item& item);

  FbsEndpoint& endpoint_;
  PipelineConfig config_;
  RejectHook on_reject_;
  Stats stats_;
  std::atomic<std::int64_t> in_flight_{0};
  std::vector<std::unique_ptr<util::BoundedMpscRing<Item>>> ingress_;
  util::BoundedMpscRing<Result> egress_;
  std::vector<std::unique_ptr<Worker>> workers_;
  util::WorkerPool pool_;  // last: joins before the state above dies
};

}  // namespace fbs::core
