// Replay protection (Section 6.2): a window-based timestamp scheme.
//
// Freshness is a sliding window centered on the receiver's current time; no
// hard state and no nonce agreement, at the cost of loose time
// synchronization. The paper concedes that replays *within* the window
// succeed and leaves tighter protection to higher layers; as an optional
// extension we add a bounded soft-state cache of recently accepted MACs
// that also rejects within-window replays (off by default -- it is soft
// state, so losing it degrades to the paper's behaviour, never worse).
//
// The seen-MAC store is a ring of minute buckets, one FlatMap per bucket,
// keyed by a fixed-size MacKey (first bytes + a 64-bit hash of the whole
// MAC). Probes never allocate -- the old std::map<minute, std::set<Bytes>>
// materialized a util::Bytes per check(), which at a million datagrams a
// second is the allocator, not the MAC, on the critical path. Buckets are
// repurposed lazily as the window slides, so there is no prune walk either.
//
// Concurrency: a FreshnessChecker is not internally synchronized. Each
// FlowDomain owns one, and the engine holds that domain's lock from before
// check() until after commit() -- the check/commit pair executes as ONE
// critical section per datagram. This closes the check-then-act window the
// split API would otherwise open: two threads racing the same duplicated
// wire both pass check() only if they interleave between one thread's check
// and its commit, which the domain lock makes impossible. Replay semantics
// are therefore per flow and exactly as strong as in the serial engine
// (every datagram of a flow hashes to the same domain; see domain.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/flat_map.hpp"
#include "util/flow_hash.hpp"

namespace fbs::core {

class FreshnessChecker {
 public:
  enum class Verdict { kFresh, kStale, kReplay };

  struct Stats {
    std::uint64_t fresh = 0;
    std::uint64_t stale = 0;
    std::uint64_t replays = 0;
  };

  /// `window_minutes` is the half-width: a timestamp within +/- window of
  /// the local clock is fresh. `strict_replay` enables the seen-MAC cache.
  FreshnessChecker(const util::Clock& clock, std::uint32_t window_minutes,
                   bool strict_replay = false)
      : clock_(clock),
        window_(window_minutes),
        strict_replay_(strict_replay) {
    // [now - w, now + w] spans 2w+1 distinct minutes; 2w+2 slots guarantee
    // no two in-window minutes share a ring slot.
    if (strict_replay_) ring_.resize(2 * static_cast<std::size_t>(window_) + 2);
  }

  /// Check a header timestamp; `mac` identifies the datagram for the
  /// optional within-window replay cache. Read-only: an unverified datagram
  /// must not mutate the seen-set, or an attacker who forwards a captured
  /// header with a forged body would poison the cache and get the genuine
  /// datagram rejected as a replay. Call commit() once the MAC verifies.
  Verdict check(std::uint32_t timestamp_minutes, util::BytesView mac);

  /// Record an accepted datagram's MAC in the within-window replay cache.
  /// Only call after MAC verification succeeds; a no-op unless strict
  /// replay is enabled.
  void commit(std::uint32_t timestamp_minutes, util::BytesView mac);

  /// Non-counting probe of the strict-replay seen-set alone. The burst
  /// receive path needs it: every datagram of a burst passes check() before
  /// any of them commits, so two copies of one wire inside a single locked
  /// burst would otherwise both slip through. Always false when strict
  /// replay is off (matching check(), which admits within-window duplicates
  /// there by design).
  bool seen(std::uint32_t timestamp_minutes, util::BytesView mac) const;

  /// Forget all recently seen MACs (crash/restart simulation). Degrades to
  /// the paper's window-only freshness check until the cache refills.
  void clear() {
    for (Bucket& b : ring_) {
      b.minute = kNoMinute;
      b.macs.clear();
    }
  }

  const Stats& stats() const { return stats_; }

  /// Heap held by the seen-MAC store (slot arrays of the per-minute maps).
  std::size_t approx_memory_bytes() const {
    std::size_t n = ring_.capacity() * sizeof(Bucket);
    for (const Bucket& b : ring_) n += b.macs.memory_bytes();
    return n;
  }

 private:
  /// Fixed-footprint MAC identity: the leading bytes plus a 64-bit hash of
  /// the full MAC, so MACs longer than the inline head still compare
  /// distinctly (up to a 2^-64 hash collision, which at worst flags one
  /// extra soft-state replay -- never weaker than the paper's window-only
  /// scheme).
  struct MacKey {
    std::uint64_t full_hash = 0;
    std::array<std::uint8_t, 24> head{};
    std::uint8_t len = 0;

    static MacKey of(util::BytesView mac) {
      MacKey k;
      k.full_hash = util::flow_hash64(mac);
      const std::size_t n = mac.size() < k.head.size() ? mac.size() : k.head.size();
      for (std::size_t i = 0; i < n; ++i) k.head[i] = mac[i];
      k.len = static_cast<std::uint8_t>(
          mac.size() > 0xFF ? 0xFF : mac.size());
      return k;
    }
    bool operator==(const MacKey& o) const {
      return full_hash == o.full_hash && len == o.len && head == o.head;
    }
  };
  struct MacKeyHash {
    std::uint64_t operator()(const MacKey& k) const { return k.full_hash; }
  };

  static constexpr std::uint32_t kNoMinute = 0xFFFFFFFFu;

  struct Bucket {
    std::uint32_t minute = kNoMinute;
    util::FlatMap<MacKey, char, MacKeyHash> macs;
  };

  bool in_window(std::uint32_t timestamp_minutes,
                 std::uint32_t now_minutes) const {
    const std::uint32_t lo = now_minutes > window_ ? now_minutes - window_ : 0;
    return timestamp_minutes >= lo &&
           timestamp_minutes <= now_minutes + window_;
  }

  const Bucket* bucket_for(std::uint32_t minute) const {
    if (ring_.empty()) return nullptr;
    const Bucket& b = ring_[minute % ring_.size()];
    return b.minute == minute ? &b : nullptr;
  }

  const util::Clock& clock_;
  std::uint32_t window_;
  bool strict_replay_;
  Stats stats_;
  std::vector<Bucket> ring_;  // minute-bucket ring, lazily repurposed
};

}  // namespace fbs::core
