// Replay protection (Section 6.2): a window-based timestamp scheme.
//
// Freshness is a sliding window centered on the receiver's current time; no
// hard state and no nonce agreement, at the cost of loose time
// synchronization. The paper concedes that replays *within* the window
// succeed and leaves tighter protection to higher layers; as an optional
// extension we add a bounded soft-state cache of recently accepted MACs
// that also rejects within-window replays (off by default -- it is soft
// state, so losing it degrades to the paper's behaviour, never worse).
//
// Concurrency: a FreshnessChecker is not internally synchronized. Each
// FlowDomain owns one, and the engine holds that domain's lock from before
// check() until after commit() -- the check/commit pair executes as ONE
// critical section per datagram. This closes the check-then-act window the
// split API would otherwise open: two threads racing the same duplicated
// wire both pass check() only if they interleave between one thread's check
// and its commit, which the domain lock makes impossible. Replay semantics
// are therefore per flow and exactly as strong as in the serial engine
// (every datagram of a flow hashes to the same domain; see domain.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "util/bytes.hpp"
#include "util/clock.hpp"

namespace fbs::core {

class FreshnessChecker {
 public:
  enum class Verdict { kFresh, kStale, kReplay };

  struct Stats {
    std::uint64_t fresh = 0;
    std::uint64_t stale = 0;
    std::uint64_t replays = 0;
  };

  /// `window_minutes` is the half-width: a timestamp within +/- window of
  /// the local clock is fresh. `strict_replay` enables the seen-MAC cache.
  FreshnessChecker(const util::Clock& clock, std::uint32_t window_minutes,
                   bool strict_replay = false)
      : clock_(clock),
        window_(window_minutes),
        strict_replay_(strict_replay) {}

  /// Check a header timestamp; `mac` identifies the datagram for the
  /// optional within-window replay cache. Read-only: an unverified datagram
  /// must not mutate the seen-set, or an attacker who forwards a captured
  /// header with a forged body would poison the cache and get the genuine
  /// datagram rejected as a replay. Call commit() once the MAC verifies.
  Verdict check(std::uint32_t timestamp_minutes, util::BytesView mac);

  /// Record an accepted datagram's MAC in the within-window replay cache.
  /// Only call after MAC verification succeeds; a no-op unless strict
  /// replay is enabled.
  void commit(std::uint32_t timestamp_minutes, util::BytesView mac);

  /// Non-counting probe of the strict-replay seen-set alone. The burst
  /// receive path needs it: every datagram of a burst passes check() before
  /// any of them commits, so two copies of one wire inside a single locked
  /// burst would otherwise both slip through. Always false when strict
  /// replay is off (matching check(), which admits within-window duplicates
  /// there by design).
  bool seen(std::uint32_t timestamp_minutes, util::BytesView mac) const;

  /// Forget all recently seen MACs (crash/restart simulation). Degrades to
  /// the paper's window-only freshness check until the cache refills.
  void clear() { seen_.clear(); }

  const Stats& stats() const { return stats_; }

 private:
  void prune(std::uint32_t now_minutes);

  const util::Clock& clock_;
  std::uint32_t window_;
  bool strict_replay_;
  Stats stats_;
  // minute bucket -> MACs accepted in that minute (soft state, pruned as
  // the window slides).
  std::map<std::uint32_t, std::set<util::Bytes>> seen_;
};

}  // namespace fbs::core
