// Software key caches (Section 5.3, Figure 5).
//
// FBS performance rests on four caches -- PVC (public-value certificates),
// MKC (pair-based master keys), TFKC and RFKC (transmit/receive flow keys).
// The paper requires them to be fast software caches: low associativity,
// and an index hash that *randomizes correlated inputs* (local addresses,
// sequential sfls) -- it names CRC-32; we also provide the naive modulo and
// XOR-fold hashes it warns against, for the ablation bench.
//
// Misses are classified into the paper's three kinds -- compulsory (cold),
// capacity, and collision (conflict) -- using a *bounded* LRU-stack
// simulator: a non-cold miss whose reuse distance fits within the cache's
// total capacity would have hit in a fully-associative cache, so it is a
// collision miss; otherwise it is a capacity miss. The simulated stack is
// capped (default kDefaultMaxDepth, covering the largest Figure 11
// capacity), so classification memory and per-miss cost are bounded no
// matter how many flows pass through -- the million-flow requirement of
// DESIGN.md 5i. References deeper than the cap are capacity misses by
// definition (reuse distance > depth >= capacity); cold detection for keys
// that fell off the stack uses a fixed-size Bloom filter of everything ever
// evicted, whose rare false positives shift a cold miss to capacity but
// never perturb the hit/miss split.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <vector>

#include "util/bytes.hpp"
#include "util/crc32.hpp"
#include "util/flat_map.hpp"

namespace fbs::core {

enum class CacheHashKind : std::uint8_t {
  kCrc32,    // the paper's recommendation
  kModulo,   // low bytes of the raw key, mod nsets
  kXorFold,  // XOR of 32-bit words, mod nsets
};

/// Map a key to a set index in [0, nsets).
std::size_t cache_index(CacheHashKind kind, util::BytesView key,
                        std::size_t nsets);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t cold_misses = 0;
  std::uint64_t capacity_misses = 0;
  std::uint64_t collision_misses = 0;

  std::uint64_t misses() const {
    return cold_misses + capacity_misses + collision_misses;
  }
  std::uint64_t accesses() const { return hits + misses(); }
  double miss_rate() const {
    return accesses() ? static_cast<double>(misses()) /
                            static_cast<double>(accesses())
                      : 0.0;
  }
};

/// Ordering over raw byte ranges with heterogeneous lookup, so cache probes
/// keyed by a BytesView never materialize a util::Bytes.
struct ByteRangeLess {
  using is_transparent = void;
  bool operator()(util::BytesView a, util::BytesView b) const {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }
};

/// Bounded LRU-stack miss classifier (fully-associative cache simulator,
/// truncated at max_depth entries).
class MissClassifier {
 public:
  enum class MissKind { kCold, kCapacity, kCollision };

  /// Default stack cap: covers the largest Figure 11 cache capacity (512)
  /// with 2x headroom, so every classification the paper's study makes is
  /// still exact.
  static constexpr std::size_t kDefaultMaxDepth = 1024;

  explicit MissClassifier(std::size_t max_depth = kDefaultMaxDepth)
      : max_depth_(max_depth ? max_depth : 1) {}

  /// Classify a miss on `key` for a cache holding `capacity` entries total,
  /// then push the reference onto the stack.
  MissKind classify_miss(util::BytesView key, std::size_t capacity);
  /// Record a hit (moves the key to the top of the stack without
  /// allocating: the list node is spliced, not reinserted).
  void record_hit(util::BytesView key);

  std::size_t max_depth() const { return max_depth_; }
  std::size_t stack_size() const { return lru_.size(); }
  /// Footprint of the simulator: position map slots + Bloom filter + stack
  /// nodes. Bounded by max_depth (plus the fixed filter), not by the number
  /// of distinct keys ever seen -- the regression test pins this.
  std::size_t approx_memory_bytes() const {
    return pos_.memory_bytes() + ever_evicted_.capacity() * sizeof(std::uint64_t) +
           stack_key_bytes_ +
           lru_.size() * (sizeof(void*) * 2 + sizeof(util::Bytes));
  }

 private:
  // Fixed-size blocked Bloom filter over evicted keys: 2^17 words = 1 MiB,
  // 4 probes. At 10^6 distinct evicted keys the false-positive rate is a
  // few percent of *cold* misses only; at the paper's trace scale it is
  // effectively zero.
  static constexpr std::size_t kBloomWords = std::size_t{1} << 17;

  std::size_t stack_distance(util::BytesView key, std::size_t limit) const;
  void push_new(util::BytesView key);
  void note_evicted(util::BytesView key);
  bool ever_evicted(util::BytesView key) const;

  std::size_t max_depth_;
  std::list<util::Bytes> lru_;
  util::FlatMap<util::Bytes, std::list<util::Bytes>::iterator,
                util::ByteRangeHash, util::ByteRangeEq>
      pos_;
  std::vector<std::uint64_t> ever_evicted_;  // Bloom bits, sized lazily
  std::size_t stack_key_bytes_ = 0;
};

/// Set-associative software cache with LRU replacement within each set.
/// ways == 1 gives the direct-mapped organization of Figure 7 / Section 5.3.
template <typename Value>
class SetAssociativeCache {
 public:
  SetAssociativeCache(std::size_t capacity, std::size_t ways = 1,
                      CacheHashKind hash = CacheHashKind::kCrc32)
      : ways_(ways ? ways : 1),
        nsets_(capacity / (ways ? ways : 1) ? capacity / (ways ? ways : 1)
                                            : 1),
        hash_(hash),
        sets_(nsets_ * ways_) {}

  std::size_t capacity() const { return nsets_ * ways_; }

  /// nullptr on miss (recorded in stats with its 3C classification). Keys
  /// are plain views: a hit performs no allocation at all.
  Value* lookup(util::BytesView key) {
    Entry* e = find(key);
    if (e) {
      e->lru_tick = ++tick_;
      ++stats_.hits;
      classifier_.record_hit(key);
      return &e->value;
    }
    switch (classifier_.classify_miss(key, capacity())) {
      case MissClassifier::MissKind::kCold: ++stats_.cold_misses; break;
      case MissClassifier::MissKind::kCapacity: ++stats_.capacity_misses; break;
      case MissClassifier::MissKind::kCollision: ++stats_.collision_misses; break;
    }
    return nullptr;
  }

  /// Peek without touching stats or LRU state.
  const Value* peek(util::BytesView key) const {
    const Entry* e = const_cast<SetAssociativeCache*>(this)->find(key);
    return e ? &e->value : nullptr;
  }

  /// Insert/overwrite; evicts the LRU way of the set if full. Returns the
  /// stored value, which stays valid until the next insert touching its set.
  Value* insert(util::BytesView key, Value value) {
    const std::size_t set = cache_index(hash_, key, nsets_);
    Entry* slot = nullptr;
    for (std::size_t w = 0; w < ways_; ++w) {
      Entry& e = sets_[set * ways_ + w];
      if (e.valid && std::ranges::equal(e.key, key)) {
        slot = &e;
        break;
      }
      if (!slot && !e.valid) slot = &e;
    }
    if (!slot) {  // evict LRU way
      slot = &sets_[set * ways_];
      for (std::size_t w = 1; w < ways_; ++w) {
        Entry& e = sets_[set * ways_ + w];
        if (e.lru_tick < slot->lru_tick) slot = &e;
      }
      ++evictions_;
    }
    slot->valid = true;
    slot->key.assign(key.begin(), key.end());
    slot->value = std::move(value);
    slot->lru_tick = ++tick_;
    return &slot->value;
  }

  void erase(util::BytesView key) {
    if (Entry* e = find(key)) e->valid = false;
  }

  void clear() {
    for (Entry& e : sets_) e.valid = false;
  }

  const CacheStats& stats() const { return stats_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    bool valid = false;
    util::Bytes key;
    Value value{};
    std::uint64_t lru_tick = 0;
  };

  Entry* find(util::BytesView key) {
    const std::size_t set = cache_index(hash_, key, nsets_);
    for (std::size_t w = 0; w < ways_; ++w) {
      Entry& e = sets_[set * ways_ + w];
      if (e.valid && std::ranges::equal(e.key, key)) return &e;
    }
    return nullptr;
  }

  std::size_t ways_;
  std::size_t nsets_;
  CacheHashKind hash_;
  std::vector<Entry> sets_;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
  CacheStats stats_;
  MissClassifier classifier_;
};

}  // namespace fbs::core
