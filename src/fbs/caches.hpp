// Software key caches (Section 5.3, Figure 5).
//
// FBS performance rests on four caches -- PVC (public-value certificates),
// MKC (pair-based master keys), TFKC and RFKC (transmit/receive flow keys).
// The paper requires them to be fast software caches: low associativity,
// and an index hash that *randomizes correlated inputs* (local addresses,
// sequential sfls) -- it names CRC-32; we also provide the naive modulo and
// XOR-fold hashes it warns against, for the ablation bench.
//
// Misses are classified into the paper's three kinds -- compulsory (cold),
// capacity, and collision (conflict) -- using an unbounded LRU-stack
// simulator: a non-cold miss whose reuse distance fits within the cache's
// total capacity would have hit in a fully-associative cache, so it is a
// collision miss; otherwise it is a capacity miss.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <map>
#include <set>
#include <vector>

#include "util/bytes.hpp"
#include "util/crc32.hpp"

namespace fbs::core {

enum class CacheHashKind : std::uint8_t {
  kCrc32,    // the paper's recommendation
  kModulo,   // low bytes of the raw key, mod nsets
  kXorFold,  // XOR of 32-bit words, mod nsets
};

/// Map a key to a set index in [0, nsets).
std::size_t cache_index(CacheHashKind kind, util::BytesView key,
                        std::size_t nsets);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t cold_misses = 0;
  std::uint64_t capacity_misses = 0;
  std::uint64_t collision_misses = 0;

  std::uint64_t misses() const {
    return cold_misses + capacity_misses + collision_misses;
  }
  std::uint64_t accesses() const { return hits + misses(); }
  double miss_rate() const {
    return accesses() ? static_cast<double>(misses()) /
                            static_cast<double>(accesses())
                      : 0.0;
  }
};

/// Ordering over raw byte ranges with heterogeneous lookup, so cache probes
/// keyed by a BytesView never materialize a util::Bytes.
struct ByteRangeLess {
  using is_transparent = void;
  bool operator()(util::BytesView a, util::BytesView b) const {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }
};

/// LRU-stack miss classifier (infinite cache simulator).
class MissClassifier {
 public:
  enum class MissKind { kCold, kCapacity, kCollision };

  /// Classify a miss on `key` for a cache holding `capacity` entries total,
  /// then push the reference onto the stack.
  MissKind classify_miss(util::BytesView key, std::size_t capacity);
  /// Record a hit (moves the key to the top of the stack without
  /// allocating: the list node is spliced, not reinserted).
  void record_hit(util::BytesView key);

 private:
  std::size_t stack_distance(util::BytesView key, std::size_t limit) const;

  std::list<util::Bytes> lru_;
  std::map<util::Bytes, std::list<util::Bytes>::iterator, ByteRangeLess> pos_;
};

/// Set-associative software cache with LRU replacement within each set.
/// ways == 1 gives the direct-mapped organization of Figure 7 / Section 5.3.
template <typename Value>
class SetAssociativeCache {
 public:
  SetAssociativeCache(std::size_t capacity, std::size_t ways = 1,
                      CacheHashKind hash = CacheHashKind::kCrc32)
      : ways_(ways ? ways : 1),
        nsets_(capacity / (ways ? ways : 1) ? capacity / (ways ? ways : 1)
                                            : 1),
        hash_(hash),
        sets_(nsets_ * ways_) {}

  std::size_t capacity() const { return nsets_ * ways_; }

  /// nullptr on miss (recorded in stats with its 3C classification). Keys
  /// are plain views: a hit performs no allocation at all.
  Value* lookup(util::BytesView key) {
    Entry* e = find(key);
    if (e) {
      e->lru_tick = ++tick_;
      ++stats_.hits;
      classifier_.record_hit(key);
      return &e->value;
    }
    switch (classifier_.classify_miss(key, capacity())) {
      case MissClassifier::MissKind::kCold: ++stats_.cold_misses; break;
      case MissClassifier::MissKind::kCapacity: ++stats_.capacity_misses; break;
      case MissClassifier::MissKind::kCollision: ++stats_.collision_misses; break;
    }
    return nullptr;
  }

  /// Peek without touching stats or LRU state.
  const Value* peek(util::BytesView key) const {
    const Entry* e = const_cast<SetAssociativeCache*>(this)->find(key);
    return e ? &e->value : nullptr;
  }

  /// Insert/overwrite; evicts the LRU way of the set if full. Returns the
  /// stored value, which stays valid until the next insert touching its set.
  Value* insert(util::BytesView key, Value value) {
    const std::size_t set = cache_index(hash_, key, nsets_);
    Entry* slot = nullptr;
    for (std::size_t w = 0; w < ways_; ++w) {
      Entry& e = sets_[set * ways_ + w];
      if (e.valid && std::ranges::equal(e.key, key)) {
        slot = &e;
        break;
      }
      if (!slot && !e.valid) slot = &e;
    }
    if (!slot) {  // evict LRU way
      slot = &sets_[set * ways_];
      for (std::size_t w = 1; w < ways_; ++w) {
        Entry& e = sets_[set * ways_ + w];
        if (e.lru_tick < slot->lru_tick) slot = &e;
      }
      ++evictions_;
    }
    slot->valid = true;
    slot->key.assign(key.begin(), key.end());
    slot->value = std::move(value);
    slot->lru_tick = ++tick_;
    return &slot->value;
  }

  void erase(util::BytesView key) {
    if (Entry* e = find(key)) e->valid = false;
  }

  void clear() {
    for (Entry& e : sets_) e.valid = false;
  }

  const CacheStats& stats() const { return stats_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    bool valid = false;
    util::Bytes key;
    Value value{};
    std::uint64_t lru_tick = 0;
  };

  Entry* find(util::BytesView key) {
    const std::size_t set = cache_index(hash_, key, nsets_);
    for (std::size_t w = 0; w < ways_; ++w) {
      Entry& e = sets_[set * ways_ + w];
      if (e.valid && std::ranges::equal(e.key, key)) return &e;
    }
    return nullptr;
  }

  std::size_t ways_;
  std::size_t nsets_;
  CacheHashKind hash_;
  std::vector<Entry> sets_;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
  CacheStats stats_;
  MissClassifier classifier_;
};

}  // namespace fbs::core
