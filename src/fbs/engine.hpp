// The FBS protocol engine: FBSSend() / FBSReceive() of Figure 4, with the
// cache-accelerated send path of Figure 6 and the combined FST+TFKC fast
// path of Section 7.2.
//
// One FbsEndpoint is the protocol half living in one principal. It holds
// only soft state (flow tables and key caches); clearing every cache at any
// moment is safe and merely costs re-derivation, which is what preserves
// datagram semantics.
//
// One deliberate deviation from Figure 4's pseudo-code: the paper computes
// the MAC over the plaintext body on send (S6, before encrypting at S8-9)
// but verifies at R7 *before* decrypting at R10-11, which cannot match for
// secret datagrams. We keep the send order and decrypt before verifying on
// receive; the MAC therefore authenticates the plaintext, as S6 intends.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <variant>

#include "crypto/algorithms.hpp"
#include "crypto/md5.hpp"
#include "fbs/caches.hpp"
#include "fbs/fam.hpp"
#include "fbs/header.hpp"
#include "fbs/keying.hpp"
#include "fbs/principal.hpp"
#include "fbs/replay.hpp"
#include "obs/metrics.hpp"
#include "obs/stages.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::core {

struct FbsConfig {
  crypto::AlgorithmSuite suite{};  // keyed MD5 + DES-CBC by default

  /// Flow state table (Figure 7): size and conversation gap threshold.
  std::size_t fst_size = 256;
  util::TimeUs flow_threshold = util::seconds(600);

  /// Flow key caches.
  std::size_t tfkc_size = 256;
  std::size_t rfkc_size = 256;
  CacheHashKind cache_hash = CacheHashKind::kCrc32;
  std::size_t cache_ways = 1;

  /// Section 7.2's optimization: merge the FST and the TFKC so mapper and
  /// key lookup are one probe. false exercises the split Figure 4/6 path.
  bool combined_fst_tfkc = true;

  /// Replay window half-width (Section 6.2) and the optional strict
  /// within-window replay cache extension.
  std::uint32_t freshness_window_minutes = 5;
  bool strict_replay = false;

  /// Key-lifetime policy (Section 5.2: "With use, an encryption key will
  /// 'wear out' and should be changed... rekeying can be easily
  /// accomplished via the FAM by changing the sfl. Rekeying decisions are
  /// made by policy modules."). Zero disables a limit. When a flow exceeds
  /// any limit, the next datagram transparently starts a fresh flow
  /// (fresh sfl, fresh key); the receiver needs no coordination.
  std::uint64_t rekey_after_datagrams = 0;
  std::uint64_t rekey_after_bytes = 0;
  util::TimeUs rekey_after_age = 0;

  /// Record per-stage latencies on the datagram path. Off by default: the
  /// steady_clock reads would perturb the per-packet CPU measurements of
  /// the Figure 8 bench, so benches opt in for instrumented runs only.
  bool trace_stages = false;
};

enum class ReceiveError : std::uint8_t {
  kMalformed,     // header does not parse / unknown suite
  kStale,         // timestamp outside the freshness window
  kReplay,        // strict replay cache rejection
  kUnknownPeer,   // no master key obtainable for the claimed source
  kBadMac,        // MAC mismatch (tampering or wrong flow key)
  kDecryptFailed, // ciphertext malformed
};

inline constexpr std::size_t kReceiveErrorKinds = 6;

const char* to_string(ReceiveError e);

/// A successfully received datagram plus its flow demultiplexing info.
struct ReceivedDatagram {
  Datagram datagram;
  Sfl sfl = 0;
  bool was_secret = false;
  crypto::AlgorithmSuite suite;
};

using ReceiveOutcome = std::variant<ReceivedDatagram, ReceiveError>;

/// Demultiplexing info for the allocation-free receive path: the body lands
/// in the caller's buffer, so only the flow facts travel in the result.
struct ReceivedInfo {
  Sfl sfl = 0;
  bool was_secret = false;
  crypto::AlgorithmSuite suite;
};

using ReceiveIntoOutcome = std::variant<ReceivedInfo, ReceiveError>;

struct SendStats {
  std::uint64_t datagrams = 0;
  std::uint64_t encrypted = 0;
  std::uint64_t flow_keys_derived = 0;  // TFKC / combined-table misses
  std::uint64_t key_unavailable = 0;    // master key could not be obtained
  std::uint64_t lifetime_rekeys = 0;    // flows retired by lifetime policy
};

struct ReceiveStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t rejected_replay = 0;
  std::uint64_t rejected_unknown_peer = 0;
  std::uint64_t rejected_bad_mac = 0;
  std::uint64_t rejected_decrypt = 0;
  std::uint64_t flow_keys_derived = 0;  // RFKC misses

  /// The same rejections indexed by ReceiveError, so experiments can report
  /// degraded-mode behaviour generically without naming each field.
  std::array<std::uint64_t, kReceiveErrorKinds> by_kind{};

  std::uint64_t rejected_by(ReceiveError e) const {
    return by_kind[static_cast<std::size_t>(e)];
  }
  std::uint64_t rejected() const {
    return rejected_malformed + rejected_stale + rejected_replay +
           rejected_unknown_peer + rejected_bad_mac + rejected_decrypt;
  }
};

class FbsEndpoint {
 public:
  /// `keys` resolves pair-based master keys (KeyManager -> MKD -> PVC).
  /// `rng` seeds the confounder LCG and the sfl counter.
  FbsEndpoint(Principal self, const FbsConfig& config, KeyManager& keys,
              const util::Clock& clock, util::RandomSource& rng);

  /// FBSSend: protect `d` (whose source must be this principal) and return
  /// the wire bytes `FBSheader || body`. nullopt if no master key for the
  /// destination can be obtained.
  std::optional<util::Bytes> protect(const Datagram& d, bool secret);

  /// FBSReceive: validate wire bytes claimed to be from `source`.
  ReceiveOutcome unprotect(const Principal& source, util::BytesView wire);

  /// Allocation-free FBSSend: `wire_out` receives `FBSheader || body`,
  /// reusing its capacity. On a flow-cache hit with warm buffers the whole
  /// call performs zero heap allocations. Returns false if no master key
  /// for the destination can be obtained (wire_out is left cleared).
  bool protect_into(const Datagram& d, bool secret, util::Bytes& wire_out);

  /// Allocation-free FBSReceive: the plaintext body lands in `body_out`
  /// (capacity reused). On rejection body_out's contents are unspecified.
  ReceiveIntoOutcome unprotect_into(const Principal& source,
                                    util::BytesView wire,
                                    util::Bytes& body_out);

  /// Force the next datagram matching `attrs` onto a fresh flow (and hence
  /// a fresh key): rekeying "via the FAM by changing the sfl" (Section 5.2).
  void rekey(const FlowAttributes& attrs);

  /// Run the sweeper (split mode; combined mode expires lazily).
  std::size_t sweep();

  /// Crash/restart simulation: drop every piece of soft state this endpoint
  /// holds -- flow tables, both flow-key caches, and the freshness/replay
  /// cache. Per the paper's soft-state claim this is safe at any moment and
  /// merely costs re-derivation on the next datagram. (Master-key state
  /// lives in the KeyManager/MKD; clear those separately for a full-host
  /// restart.)
  void clear_soft_state();

  /// Wire overhead of the security flow header itself.
  std::size_t header_overhead() const {
    return FbsHeader::overhead(config_.suite);
  }

  /// Worst-case wire growth of protect(): header plus block-cipher padding
  /// (PKCS#7 adds 1..8 bytes under DES ECB/CBC). This is what MTU budgeting
  /// -- the tcp_output.c fix -- must subtract.
  std::size_t max_wire_overhead() const {
    const bool pads =
        config_.suite.cipher == crypto::CipherAlgorithm::kDesCbc ||
        config_.suite.cipher == crypto::CipherAlgorithm::kDesEcb;
    return header_overhead() + (pads ? crypto::Des::kBlockSize : 0);
  }

  const Principal& self() const { return self_; }
  const FbsConfig& config() const { return config_; }
  FlowPolicy& policy() { return *policy_; }
  const SendStats& send_stats() const { return send_stats_; }
  const ReceiveStats& receive_stats() const { return receive_stats_; }
  const CacheStats& tfkc_stats() const { return tfkc_.stats(); }
  const CacheStats& rfkc_stats() const { return rfkc_.stats(); }
  const FreshnessChecker::Stats& freshness_stats() const {
    return freshness_.stats();
  }
  obs::StageTracer& tracer() { return tracer_; }
  const obs::StageTracer& tracer() const { return tracer_; }

  /// Register every stat this endpoint keeps -- send/receive counters, the
  /// TFKC/RFKC 3C taxonomy, FAM and freshness stats, stage latencies -- as
  /// pull sources under `<prefix>.` dotted names. The endpoint must outlive
  /// `registry`.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

 private:
  struct CombinedEntry {
    bool valid = false;
    FlowAttributes attrs;
    Sfl sfl = 0;
    FlowCryptoContext ctx;  // ready key schedule + keyed MAC context
    util::TimeUs created = 0;
    util::TimeUs last = 0;
    std::uint64_t datagrams = 0;
    std::uint64_t bytes = 0;
  };

  /// Lifetime policy check (combined path tracks usage in the entry; the
  /// split path tracks it on the FlowStateEntry via the policy).
  bool key_worn_out(const CombinedEntry& e, util::TimeUs now) const;

  /// Record a rejection in both the named field and the by-kind array.
  ReceiveError reject(ReceiveError e);

  /// Resolve (sfl, crypto context) for an outgoing datagram; combined or
  /// split. The pointer is into the cache and is valid until the next
  /// lookup/insert (i.e. for the rest of this datagram).
  std::optional<std::pair<Sfl, FlowCryptoContext*>> outgoing_flow(
      const Datagram& d);
  FlowCryptoContext* incoming_flow_context(const Principal& source, Sfl sfl,
                                           crypto::AlgorithmSuite suite);
  static void cache_key_into(Sfl sfl, const Principal& a, const Principal& b,
                             util::Bytes& out);

  /// One Mac instance per suite, created on first use: the receive path
  /// consults the header's suite every datagram and must not re-instantiate
  /// the algorithm each time.
  crypto::Mac& suite_mac(crypto::MacAlgorithm alg);

  Principal self_;
  FbsConfig config_;
  KeyManager& keys_;
  const util::Clock& clock_;
  util::Lcg48 confounder_gen_;
  SflAllocator sfl_alloc_;
  std::unique_ptr<FlowPolicy> policy_;
  std::vector<CombinedEntry> combined_;  // FST+TFKC merged (Section 7.2)
  SetAssociativeCache<FlowCryptoContext> tfkc_;
  SetAssociativeCache<FlowCryptoContext> rfkc_;
  FreshnessChecker freshness_;
  crypto::Md5 kdf_hash_;  // H of Section 5.2 (need not equal the MAC hash)
  std::array<std::unique_ptr<crypto::Mac>, 8> suite_macs_;  // by MacAlgorithm
  SendStats send_stats_;
  ReceiveStats receive_stats_;
  obs::StageTracer tracer_;

  /// Scratch reused across datagrams (an endpoint is single-threaded, like
  /// the in-kernel implementation it models); warm steady state touches
  /// these without allocating.
  util::Bytes scratch_attrs_;  // FlowAttributes encoding for the FST probe
  util::Bytes scratch_key_;    // TFKC/RFKC cache key
  util::Bytes scratch_body_;   // ciphertext staging on send
};

}  // namespace fbs::core
