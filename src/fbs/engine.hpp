// The FBS protocol engine: FBSSend() / FBSReceive() of Figure 4, with the
// cache-accelerated send path of Figure 6 and the combined FST+TFKC fast
// path of Section 7.2.
//
// One FbsEndpoint is the protocol half living in one principal. It holds
// only soft state (flow tables and key caches); clearing every cache at any
// moment is safe and merely costs re-derivation, which is what preserves
// datagram semantics.
//
// Concurrency (DESIGN.md section 5f): per-flow state is striped across
// config.shards independent FlowDomains. The WorkContext overloads of
// protect_into/unprotect_into are re-entrant -- any number of threads may
// call them concurrently, each with its own WorkContext; the engine takes
// exactly one domain lock for the duration of each datagram. The legacy
// overloads without a WorkContext use an internal context and therefore
// keep the original single-threaded contract. Key management (KeyManager /
// MKD) is deliberately serial behind its own lock: keying is the cold path.
//
// One deliberate deviation from Figure 4's pseudo-code: the paper computes
// the MAC over the plaintext body on send (S6, before encrypting at S8-9)
// but verifies at R7 *before* decrypting at R10-11, which cannot match for
// secret datagrams. We keep the send order and decrypt before verifying on
// receive; the MAC therefore authenticates the plaintext, as S6 intends.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <variant>

#include "crypto/algorithms.hpp"
#include "fbs/caches.hpp"
#include "fbs/domain.hpp"
#include "fbs/fam.hpp"
#include "fbs/header.hpp"
#include "fbs/keying.hpp"
#include "fbs/principal.hpp"
#include "fbs/replay.hpp"
#include "obs/metrics.hpp"
#include "obs/stages.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::core {

/// One datagram of a receive burst (see FbsEndpoint::unprotect_burst_into).
/// `source` and `body_out` are caller-owned and must outlive the call;
/// `outcome` is written per item, exactly as unprotect_into would have.
struct ReceiveBurstItem {
  const Principal* source = nullptr;  // claimed sender of this wire
  util::BytesView wire;               // FBSheader || body
  util::Bytes* body_out = nullptr;    // receives the plaintext body
  ReceiveIntoOutcome outcome = ReceiveError::kMalformed;
};

class FbsEndpoint {
 public:
  /// `keys` resolves pair-based master keys (KeyManager -> MKD -> PVC).
  /// `rng` seeds the per-domain confounder LCGs and the sfl counter.
  FbsEndpoint(Principal self, const FbsConfig& config, KeyManager& keys,
              const util::Clock& clock, util::RandomSource& rng);

  /// FBSSend: protect `d` (whose source must be this principal) and return
  /// the wire bytes `FBSheader || body`. nullopt if no master key for the
  /// destination can be obtained.
  std::optional<util::Bytes> protect(const Datagram& d, bool secret);

  /// FBSReceive: validate wire bytes claimed to be from `source`.
  ReceiveOutcome unprotect(const Principal& source, util::BytesView wire);

  /// Allocation-free FBSSend: `wire_out` receives `FBSheader || body`,
  /// reusing its capacity. On a flow-cache hit with warm buffers the whole
  /// call performs zero heap allocations. Returns false if no master key
  /// for the destination can be obtained (wire_out is left cleared).
  /// Uses the endpoint's internal WorkContext: NOT re-entrant.
  bool protect_into(const Datagram& d, bool secret, util::Bytes& wire_out);

  /// Allocation-free FBSReceive: the plaintext body lands in `body_out`
  /// (capacity reused). On rejection body_out's contents are unspecified.
  /// Uses the endpoint's internal WorkContext: NOT re-entrant.
  ReceiveIntoOutcome unprotect_into(const Principal& source,
                                    util::BytesView wire,
                                    util::Bytes& body_out);

  /// Re-entrant FBSSend: safe to call from any number of threads
  /// concurrently, each passing its own WorkContext (and its own wire_out).
  /// Datagrams of distinct flows on distinct shards proceed fully in
  /// parallel; same-shard datagrams serialize on that shard's lock.
  bool protect_into(WorkContext& ctx, const Datagram& d, bool secret,
                    util::Bytes& wire_out);

  /// Re-entrant FBSReceive; same threading contract as the protect_into
  /// overload above. Replay check+commit executes atomically under the
  /// owning shard's lock, so a duplicated wire racing itself from two
  /// threads is accepted exactly once (strict-replay mode).
  ReceiveIntoOutcome unprotect_into(WorkContext& ctx,
                                    const Principal& source,
                                    util::BytesView wire,
                                    util::Bytes& body_out);

  /// Burst FBSReceive: the batched counterpart of the re-entrant
  /// unprotect_into, built for the pipeline workers' per-ring-visit bursts.
  /// Items are grouped by owning shard and each group is processed under
  /// ONE domain lock; within a group, every eligible ciphertext (secret
  /// DES-CBC body of valid length, with config().bitslice_crypto set) is
  /// decrypted by the 64-wide bitsliced batch engine in ctx.batch -- mixed
  /// flow keys included -- before per-datagram MAC verification and the
  /// replay commit. Ineligible items (plaintext, 3DES, stream modes, other
  /// failures) take the scalar path inside the same critical section.
  /// Outcome and plaintext land in each item. Observable results match
  /// calling unprotect_into per item; only the grouping of lock
  /// acquisitions and the cipher core differ.
  void unprotect_burst_into(WorkContext& ctx,
                            std::span<ReceiveBurstItem> items);

  /// Force the next datagram matching `attrs` onto a fresh flow (and hence
  /// a fresh key): rekeying "via the FAM by changing the sfl" (Section 5.2).
  void rekey(const FlowAttributes& attrs);

  /// Run the sweeper on every domain (split mode; combined mode expires
  /// lazily).
  std::size_t sweep();

  /// Crash/restart simulation: drop every piece of soft state this endpoint
  /// holds -- flow tables, both flow-key caches, and the freshness/replay
  /// cache, in every domain. Per the paper's soft-state claim this is safe
  /// at any moment and merely costs re-derivation on the next datagram.
  /// (Master-key state lives in the KeyManager/MKD; clear those separately
  /// for a full-host restart.)
  void clear_soft_state();

  /// Wire overhead of the security flow header itself.
  std::size_t header_overhead() const {
    return FbsHeader::overhead(config_.suite);
  }

  /// Worst-case wire growth of protect(): header plus block-cipher padding
  /// (PKCS#7 adds 1..8 bytes under DES ECB/CBC). This is what MTU budgeting
  /// -- the tcp_output.c fix -- must subtract.
  std::size_t max_wire_overhead() const {
    const bool pads =
        config_.suite.cipher == crypto::CipherAlgorithm::kDesCbc ||
        config_.suite.cipher == crypto::CipherAlgorithm::kDesEcb ||
        config_.suite.cipher == crypto::CipherAlgorithm::kDes3Ede;
    return header_overhead() + (pads ? crypto::Des::kBlockSize : 0);
  }

  const Principal& self() const { return self_; }
  const FbsConfig& config() const { return config_; }
  /// Domain 0's policy (the only one when shards == 1, the common
  /// single-threaded configuration).
  FlowPolicy& policy() { return *domains_.front()->policy; }

  // --- Sharding introspection (tests, benches, the pipeline) ---
  std::size_t shard_count() const { return domains_.size(); }
  const FlowDomain& shard(std::size_t i) const { return *domains_[i]; }
  /// Which domain an outgoing datagram with `attrs` lands on.
  std::size_t send_shard_of(const FlowAttributes& attrs) const;
  /// Which domain a received datagram from `source` carrying `sfl` lands
  /// on. Both sides of the hash are wire facts, so every datagram of a
  /// flow -- including replays -- resolves to the same shard.
  std::size_t recv_shard_of(const Principal& source, Sfl sfl) const;
  /// recv_shard_of with the sfl peeked from the wire (unparseable wires go
  /// to the source's sfl-0 shard, which records the malformed rejection).
  std::size_t recv_shard_of_wire(const Principal& source,
                                 util::BytesView wire) const;

  // --- Stats, aggregated across domains ---
  // Each accessor locks every domain in turn and sums into a stable
  // endpoint-owned struct, so the returned reference stays valid (and keeps
  // the pre-sharding signatures) but its contents are a snapshot taken at
  // call time, not a live view. Per-domain figures: shard(i).
  const SendStats& send_stats() const;
  const ReceiveStats& receive_stats() const;
  const CacheStats& tfkc_stats() const;
  const CacheStats& rfkc_stats() const;
  const FreshnessChecker::Stats& freshness_stats() const;
  const FamStats& fam_stats() const;
  /// Aggregated megaflow control-plane counters; nullptr when the paper's
  /// fixed-table policy is active (max_flows_per_shard == 0). Counters and
  /// footprints sum across shards; map_load_factor reports the worst shard.
  const MegaflowStats* megaflow_stats() const;

  /// Domain 0's tracer (per-domain tracers: shard(i).tracer).
  obs::StageTracer& tracer() { return domains_.front()->tracer; }
  const obs::StageTracer& tracer() const { return domains_.front()->tracer; }

  /// Register every stat this endpoint keeps -- send/receive counters, the
  /// TFKC/RFKC 3C taxonomy, FAM and freshness stats, stage latencies -- as
  /// pull sources under `<prefix>.` dotted names. The endpoint must outlive
  /// `registry`. Counters are aggregated across shards; stage latencies are
  /// per shard (suffix `.shard<i>` when there is more than one).
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

 private:
  /// Lifetime policy check (combined path tracks usage in the entry; the
  /// split path tracks it on the FlowStateEntry via the policy).
  bool key_worn_out(const CombinedFlowEntry& e, util::TimeUs now) const;

  /// Record a rejection in the domain's named field and by-kind array.
  /// Caller holds dom.mu.
  static ReceiveError reject(FlowDomain& dom, ReceiveError e);

  /// Resolve (sfl, crypto context) for an outgoing datagram; combined or
  /// split. Caller holds dom.mu and has encoded d.attrs into ctx.attrs.
  /// The pointer is into the domain's cache and is valid until the next
  /// lookup/insert under the same lock (i.e. for the rest of this
  /// datagram).
  std::optional<std::pair<Sfl, FlowCryptoContext*>> outgoing_flow(
      FlowDomain& dom, WorkContext& ctx, const Datagram& d);
  FlowCryptoContext* incoming_flow_context(FlowDomain& dom, WorkContext& ctx,
                                           const Principal& source, Sfl sfl,
                                           crypto::AlgorithmSuite suite);

  /// The in-lock body of unprotect_into, from the post-parse header checks
  /// through accept/reject. Caller holds dom.mu.
  ReceiveIntoOutcome unprotect_item_locked(FlowDomain& dom, WorkContext& ctx,
                                           const Principal& source,
                                           const FbsHeaderView& header,
                                           util::Bytes& body_out);
  /// One ≤64-item slice of a burst (the batch engine's lane width bounds
  /// the per-chunk stack state, not the lane assignment).
  void unprotect_burst_chunk(WorkContext& ctx,
                             std::span<ReceiveBurstItem> items);
  static void cache_key_into(Sfl sfl, const Principal& a, const Principal& b,
                             util::Bytes& out);

  /// One immutable Mac instance per suite, built eagerly in the
  /// constructor; Mac itself is stateless (make_context is const), so the
  /// array is safely shared by every domain and worker.
  const crypto::Mac& suite_mac(crypto::MacAlgorithm alg) const;

  std::size_t shard_index(std::uint64_t hash) const {
    return static_cast<std::size_t>(hash % domains_.size());
  }

  Principal self_;
  FbsConfig config_;
  KeyManager& keys_;
  const util::Clock& clock_;
  SflAllocator sfl_alloc_;  // atomic counter, shared by all domains
  std::array<std::unique_ptr<crypto::Mac>, 8> suite_macs_;  // by MacAlgorithm
  std::vector<std::unique_ptr<FlowDomain>> domains_;

  /// Serves the legacy (context-free) protect/unprotect overloads.
  WorkContext default_ctx_;

  /// Aggregation staging for the stats accessors: mutable so the accessors
  /// can keep returning stable references with const signatures.
  mutable SendStats agg_send_;
  mutable ReceiveStats agg_recv_;
  mutable CacheStats agg_tfkc_;
  mutable CacheStats agg_rfkc_;
  mutable FreshnessChecker::Stats agg_freshness_;
  mutable FamStats agg_fam_;
  mutable MegaflowStats agg_mega_;
};

}  // namespace fbs::core
