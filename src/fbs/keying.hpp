// Zero-message keying (Section 5.1) and the key-management plumbing of
// Figure 5.
//
// The pair-based master key K_{S,D} = g^{sd} mod p is implicit: either end
// computes it from its own private value and the peer's certified public
// value, with no end-to-end message. Flow keys are derived as
//     K_f = H(sfl | K_{S,D} | S | D)
// so compromising one flow key reveals neither the master key nor any
// sibling flow key (Section 6.1).
//
// Figure 5's split is preserved: the MasterKeyDaemon is the user-space MKD
// owning the PVC and the expensive work (directory fetches over the secure
// flow bypass, certificate verification, modular exponentiation); the
// KeyManager is the in-kernel half owning the MKC and upcalling into the
// daemon on a miss.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "bignum/uint.hpp"
#include "cert/certificate.hpp"
#include "cert/directory.hpp"
#include "crypto/algorithms.hpp"
#include "crypto/des.hpp"
#include "crypto/des3.hpp"
#include "crypto/des_bitslice.hpp"
#include "crypto/dh.hpp"
#include "crypto/hash.hpp"
#include "fbs/caches.hpp"
#include "fbs/principal.hpp"
#include "obs/metrics.hpp"
#include "util/clock.hpp"

namespace fbs::core {

/// K_f = H(sfl | K_{S,D} | S | D). S and D are the principal addresses;
/// their inclusion ties the flow key to this ordered pair (Section 5.2).
util::Bytes derive_flow_key(crypto::Hash& hash, Sfl sfl,
                            util::BytesView master_key, const Principal& S,
                            const Principal& D);

/// Everything the datagram hot path needs from a flow key, derived once
/// when the flow key is: the DES key schedule (16 subkey expansions) and
/// the keyed MAC context (key hashing plus, for HMAC, both pad blocks).
/// This is what the TFKC/RFKC and the combined FST+TFKC store, so a cache
/// hit hands back ready-to-run cryptography instead of raw key bytes.
struct FlowCryptoContext {
  util::Bytes key;                  // K_f itself (kept for re-suiting)
  crypto::AlgorithmSuite suite{};   // what des/mac below were built for
  std::optional<crypto::Des> des;   // engaged unless the suite is cipherless
  /// The same DES key expanded for the 64-wide bitsliced engine; derived
  /// once per flow (one transpose of the subkeys) so the batch scheduler
  /// can key lanes by pointer. Engaged exactly when `des` is and the suite
  /// runs single DES (the bitslice core is single-algorithm).
  std::optional<crypto::DesBitsliceKeySchedule> bitslice;
  /// Engaged instead of `des` for the kDes3Ede suite: K_f (16 bytes) is
  /// stretched to the 24-byte EDE key as K_f | MD5(K_f)[0..8).
  std::optional<crypto::Des3> des3;
  std::unique_ptr<crypto::MacContext> mac;
};

/// Build the per-flow context for `suite`. `mac_alg` is the (cached,
/// per-suite) Mac instance matching suite.mac -- the caller owns it; only
/// the derived MacContext is stored.
FlowCryptoContext make_flow_crypto_context(util::Bytes key,
                                           crypto::AlgorithmSuite suite,
                                           const crypto::Mac& mac_alg);

/// Rebuild `ctx`'s des/mac for `suite` if it was keyed for a different one
/// (a receiver can see the same sfl under different header suites).
void ensure_suite(FlowCryptoContext& ctx, crypto::AlgorithmSuite suite,
                  const crypto::Mac& mac_alg);

struct MkdStats {
  std::uint64_t upcalls = 0;
  std::uint64_t directory_fetches = 0;   // attempts, including retries
  std::uint64_t directory_failures = 0;  // fetch sequences that gave up
  std::uint64_t directory_retries = 0;   // extra attempts after a transient
  std::uint64_t verify_failures = 0;
  std::uint64_t master_keys_computed = 0;
  std::uint64_t negative_cache_hits = 0;     // upcalls short-circuited
  std::uint64_t negative_cache_inserts = 0;  // peers marked unresolvable
  std::uint64_t backoff_waited_us = 0;       // cumulative backoff time
};

/// Bounded retry with backoff + jitter for transient directory failures
/// (outages, timeouts), plus the TTL of the negative cache that absorbs
/// upcall storms for peers that stay unresolvable. All state this
/// produces is soft: wiping it merely costs re-fetching.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;  // total fetch attempts per upcall
  util::TimeUs initial_backoff = util::TimeUs{50'000};  // before attempt 2
  double multiplier = 2.0;         // legacy schedule only
  util::TimeUs max_backoff = util::seconds(2);
  double jitter = 0.5;  // legacy schedule: each wait scaled by U[1-jitter, 1]
  /// Decorrelated jitter (default): wait_n = min(max_backoff,
  /// U[initial_backoff, 3 * wait_{n-1}]), with wait_0 = initial_backoff.
  /// Compared with jittered exponential backoff, the draws of different
  /// daemons spread over the whole interval instead of clustering near the
  /// shared nominal schedule, so a population retrying the same directory
  /// outage does not re-stampede in synchronized waves. Set false for the
  /// legacy multiplier/jitter schedule above.
  bool decorrelated = true;
  util::TimeUs negative_ttl = util::seconds(30);
  /// Jitter RNG seed. Each daemon mixes its own principal address into
  /// this, so a fleet sharing one policy still draws distinct schedules.
  std::uint64_t seed = 42;
};

/// User-space master key daemon: PVC + certificate fetch/verify + DH.
class MasterKeyDaemon {
 public:
  /// `verifier` judges fetched certificates: a CertificateAuthority for
  /// flat deployments, a cert::ChainVerifier for hierarchical ones.
  MasterKeyDaemon(Principal self, bignum::Uint private_value,
                  const crypto::DhGroup& group,
                  const cert::Verifier& verifier,
                  cert::DirectoryService& directory, const util::Clock& clock,
                  std::size_t pvc_size = 64,
                  CacheHashKind hash = CacheHashKind::kCrc32,
                  std::size_t pvc_ways = 2);

  /// The Upcall() of Figure 6: produce the pair-based master key for `peer`
  /// (fixed-width big-endian), or nullopt if no valid certificate can be
  /// obtained. Each PVC hit is re-verified before use ("a certificate can
  /// be verified each time it is used").
  std::optional<util::Bytes> upcall(const Principal& peer);

  /// Pre-load a certificate ("pin certain certificates in the cache upon
  /// initialization", Section 5.3).
  void pin_certificate(const cert::PublicValueCertificate& cert);

  /// Replace the retry/backoff/negative-cache parameters.
  void set_retry_policy(const RetryPolicy& policy);
  /// How backoff waits are served. In simulation this should advance the
  /// VirtualClock (so directory outages can clear while we wait); unset,
  /// retries are immediate.
  void set_backoff_waiter(std::function<void(util::TimeUs)> waiter) {
    waiter_ = std::move(waiter);
  }

  /// Crash/restart simulation: drop the PVC and the negative cache. Safe at
  /// any moment -- both are soft state, rebuilt on demand.
  void clear_soft_state();

  const Principal& self() const { return self_; }
  const crypto::DhGroup& group() const { return group_; }
  const RetryPolicy& retry_policy() const { return retry_; }
  const MkdStats& stats() const { return stats_; }
  const CacheStats& pvc_stats() const { return pvc_.stats(); }

  /// Publish MKD and PVC stats as pull sources under `<prefix>.` names.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

 private:
  std::optional<cert::PublicValueCertificate> obtain_certificate(
      const Principal& peer);
  cert::FetchResult fetch_with_retry(const Principal& peer);
  /// Mix the daemon's principal address into the policy seed so identical
  /// policies still yield per-daemon schedules (decorrelation's premise).
  std::uint64_t jitter_seed(std::uint64_t base) const;

  Principal self_;
  bignum::Uint private_value_;
  const crypto::DhGroup& group_;
  const cert::Verifier& verifier_;
  cert::DirectoryService& directory_;
  const util::Clock& clock_;
  SetAssociativeCache<cert::PublicValueCertificate> pvc_;
  RetryPolicy retry_;
  util::SplitMix64 jitter_rng_{42};
  std::function<void(util::TimeUs)> waiter_;
  std::map<util::Bytes, util::TimeUs> negative_;  // peer -> entry expiry
  MkdStats stats_;
};

/// Kernel-side key manager: the MKC, with upcalls to the daemon on miss.
///
/// Thread-safe behind one mutex, held across the daemon upcall: keying is
/// deliberately serial (DESIGN.md section 5f). Key derivation happens once
/// per flow, not per datagram, so serializing it costs nothing on the
/// sharded fast path, and the MasterKeyDaemon (directory fetches, backoff
/// waits, DH exponentiation) stays single-threaded and lock-free inside.
class KeyManager {
 public:
  KeyManager(MasterKeyDaemon& daemon, std::size_t mkc_size = 64,
             CacheHashKind hash = CacheHashKind::kCrc32,
             std::size_t mkc_ways = 2)
      : daemon_(daemon), mkc_(mkc_size, mkc_ways, hash) {}

  /// K_{S,D} for self<->peer; cached in the MKC.
  std::optional<util::Bytes> master_key(const Principal& peer);

  /// Drop a cached master key (e.g. after peer key rollover).
  void invalidate(const Principal& peer) {
    std::lock_guard<std::mutex> lock(mu_);
    mkc_.erase(peer.address);
  }

  /// Crash/restart simulation: wipe the MKC (soft state; re-derived via
  /// upcalls on the next datagram).
  void clear_soft_state() {
    std::lock_guard<std::mutex> lock(mu_);
    mkc_.clear();
  }

  /// Snapshot taken under the lock; the reference stays valid (same
  /// stable-address contract as the endpoint's aggregated stats).
  const CacheStats& mkc_stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    stats_snapshot_ = mkc_.stats();
    return stats_snapshot_;
  }
  std::uint64_t upcalls() const {
    return upcalls_.load(std::memory_order_relaxed);
  }

  /// Publish MKC stats and the upcall counter under `<prefix>.` names.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

 private:
  MasterKeyDaemon& daemon_;
  mutable std::mutex mu_;  // guards mkc_ and the daemon upcall
  SetAssociativeCache<util::Bytes> mkc_;
  std::atomic<std::uint64_t> upcalls_{0};
  mutable CacheStats stats_snapshot_;
};

}  // namespace fbs::core
