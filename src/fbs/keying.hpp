// Zero-message keying (Section 5.1) and the key-management plumbing of
// Figure 5.
//
// The pair-based master key K_{S,D} = g^{sd} mod p is implicit: either end
// computes it from its own private value and the peer's certified public
// value, with no end-to-end message. Flow keys are derived as
//     K_f = H(sfl | K_{S,D} | S | D)
// so compromising one flow key reveals neither the master key nor any
// sibling flow key (Section 6.1).
//
// Figure 5's split is preserved: the MasterKeyDaemon is the user-space MKD
// owning the PVC and the expensive work (directory fetches over the secure
// flow bypass, certificate verification, modular exponentiation); the
// KeyManager is the in-kernel half owning the MKC and upcalling into the
// daemon on a miss.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "bignum/uint.hpp"
#include "cert/certificate.hpp"
#include "cert/directory.hpp"
#include "crypto/dh.hpp"
#include "crypto/hash.hpp"
#include "fbs/caches.hpp"
#include "fbs/principal.hpp"
#include "util/clock.hpp"

namespace fbs::core {

/// K_f = H(sfl | K_{S,D} | S | D). S and D are the principal addresses;
/// their inclusion ties the flow key to this ordered pair (Section 5.2).
util::Bytes derive_flow_key(crypto::Hash& hash, Sfl sfl,
                            util::BytesView master_key, const Principal& S,
                            const Principal& D);

struct MkdStats {
  std::uint64_t upcalls = 0;
  std::uint64_t directory_fetches = 0;
  std::uint64_t directory_failures = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t master_keys_computed = 0;
};

/// User-space master key daemon: PVC + certificate fetch/verify + DH.
class MasterKeyDaemon {
 public:
  /// `verifier` judges fetched certificates: a CertificateAuthority for
  /// flat deployments, a cert::ChainVerifier for hierarchical ones.
  MasterKeyDaemon(Principal self, bignum::Uint private_value,
                  const crypto::DhGroup& group,
                  const cert::Verifier& verifier,
                  cert::DirectoryService& directory, const util::Clock& clock,
                  std::size_t pvc_size = 64,
                  CacheHashKind hash = CacheHashKind::kCrc32,
                  std::size_t pvc_ways = 2);

  /// The Upcall() of Figure 6: produce the pair-based master key for `peer`
  /// (fixed-width big-endian), or nullopt if no valid certificate can be
  /// obtained. Each PVC hit is re-verified before use ("a certificate can
  /// be verified each time it is used").
  std::optional<util::Bytes> upcall(const Principal& peer);

  /// Pre-load a certificate ("pin certain certificates in the cache upon
  /// initialization", Section 5.3).
  void pin_certificate(const cert::PublicValueCertificate& cert);

  const Principal& self() const { return self_; }
  const crypto::DhGroup& group() const { return group_; }
  const MkdStats& stats() const { return stats_; }
  const CacheStats& pvc_stats() const { return pvc_.stats(); }

 private:
  std::optional<cert::PublicValueCertificate> obtain_certificate(
      const Principal& peer);

  Principal self_;
  bignum::Uint private_value_;
  const crypto::DhGroup& group_;
  const cert::Verifier& verifier_;
  cert::DirectoryService& directory_;
  const util::Clock& clock_;
  SetAssociativeCache<cert::PublicValueCertificate> pvc_;
  MkdStats stats_;
};

/// Kernel-side key manager: the MKC, with upcalls to the daemon on miss.
class KeyManager {
 public:
  KeyManager(MasterKeyDaemon& daemon, std::size_t mkc_size = 64,
             CacheHashKind hash = CacheHashKind::kCrc32,
             std::size_t mkc_ways = 2)
      : daemon_(daemon), mkc_(mkc_size, mkc_ways, hash) {}

  /// K_{S,D} for self<->peer; cached in the MKC.
  std::optional<util::Bytes> master_key(const Principal& peer);

  /// Drop a cached master key (e.g. after peer key rollover).
  void invalidate(const Principal& peer) { mkc_.erase(peer.address); }

  const CacheStats& mkc_stats() const { return mkc_.stats(); }
  std::uint64_t upcalls() const { return upcalls_; }

 private:
  MasterKeyDaemon& daemon_;
  SetAssociativeCache<util::Bytes> mkc_;
  std::uint64_t upcalls_ = 0;
};

}  // namespace fbs::core
