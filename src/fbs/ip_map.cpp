#include "fbs/ip_map.hpp"

#include "net/headers.hpp"

namespace fbs::core {

namespace {

bool is_transport(std::uint8_t proto) {
  return proto == static_cast<std::uint8_t>(net::IpProto::kTcp) ||
         proto == static_cast<std::uint8_t>(net::IpProto::kUdp);
}

}  // namespace

FbsIpMapping::FbsIpMapping(net::IpStack& stack, const IpMappingConfig& config,
                           KeyManager& keys, const util::Clock& clock,
                           util::RandomSource& rng)
    : config_(config),
      endpoint_(Principal::from_ipv4(stack.address()), config.fbs, keys,
                clock, rng) {
  net::IpStack::SecurityHooks hooks;
  hooks.output = [this](net::Ipv4Header& h, util::Bytes& p) {
    return on_output(h, p);
  };
  hooks.input = [this](const net::Ipv4Header& h, util::Bytes& p) {
    return on_input(h, p);
  };
  hooks.header_overhead = endpoint_.max_wire_overhead();
  stack.set_security_hooks(std::move(hooks));
}

FlowAttributes FbsIpMapping::attributes_of(const net::Ipv4Header& header,
                                           util::BytesView payload) {
  FlowAttributes attrs;
  attrs.source_address = header.source.value;
  attrs.destination_address = header.destination.value;
  if (is_transport(header.protocol)) {
    attrs.protocol = header.protocol;
    if (const auto ports = net::peek_ports(payload)) {
      attrs.source_port = ports->source;
      attrs.destination_port = ports->destination;
    }
  } else {
    // Raw IP as a host-level flow (footnote 10): all non-transport traffic
    // between the pair shares one flow. aux marks the class so it can never
    // alias a real five-tuple.
    attrs.aux = 0x7261772D6970ull;  // "raw-ip"
  }
  return attrs;
}

bool FbsIpMapping::on_output(net::Ipv4Header& header, util::Bytes& payload) {
  if (!is_transport(header.protocol) && !config_.protect_raw_ip) {
    ++counters_.out_raw_ip;
    return true;
  }
  if (config_.bypass_hosts.contains(header.destination)) {
    ++counters_.out_bypassed;
    return true;
  }

  Datagram d;
  d.source = Principal::from_ipv4(header.source);
  d.destination = Principal::from_ipv4(header.destination);
  d.attrs = attributes_of(header, payload);
  d.body = std::move(payload);

  const bool secret =
      config_.secret_policy ? config_.secret_policy(d.attrs) : true;
  if (!endpoint_.protect_into(d, secret, scratch_wire_)) {
    // Fail closed: traffic must not leave unprotected when keying fails.
    ++counters_.out_dropped;
    payload = std::move(d.body);
    return false;
  }
  ++counters_.out_protected;
  std::swap(payload, scratch_wire_);
  // Recycle the plaintext buffer as next packet's wire staging.
  scratch_wire_ = std::move(d.body);
  return true;
}

bool FbsIpMapping::on_input(const net::Ipv4Header& header,
                            util::Bytes& payload) {
  if (!is_transport(header.protocol) && !config_.protect_raw_ip) {
    ++counters_.in_raw_ip;
    return true;
  }
  if (config_.bypass_hosts.contains(header.source)) {
    ++counters_.in_bypassed;
    return true;
  }

  const auto outcome = endpoint_.unprotect_into(
      Principal::from_ipv4(header.source), payload, scratch_body_);
  if (const auto* err = std::get_if<ReceiveError>(&outcome)) {
    ++counters_.in_rejected[static_cast<std::size_t>(*err)];
    return false;
  }
  ++counters_.in_accepted;
  // The old wire buffer (capacity >= any body it can carry) becomes next
  // packet's body staging, so the steady-state receive hook never allocates.
  std::swap(payload, scratch_body_);
  return true;
}

}  // namespace fbs::core
