#include "fbs/ip_map.hpp"

#include "net/headers.hpp"

namespace fbs::core {

namespace {

bool is_transport(std::uint8_t proto) {
  return proto == static_cast<std::uint8_t>(net::IpProto::kTcp) ||
         proto == static_cast<std::uint8_t>(net::IpProto::kUdp);
}

}  // namespace

FbsIpMapping::FbsIpMapping(net::IpStack& stack, const IpMappingConfig& config,
                           KeyManager& keys, const util::Clock& clock,
                           util::RandomSource& rng)
    : config_(config),
      stack_(stack),
      endpoint_(Principal::from_ipv4(stack.address()), config.fbs, keys,
                clock, rng) {
  if (config_.pipeline_workers > 0) {
    PipelineConfig pc;
    pc.workers = config_.pipeline_workers;
    pc.ingress_capacity = config_.pipeline_ingress_capacity;
    pc.egress_capacity = config_.pipeline_egress_capacity;
    pc.batch = config_.pipeline_batch;
    pc.pool_buffers = config_.pipeline_pool_buffers;
    pc.pool_buffer_bytes = config_.pipeline_pool_buffer_bytes;
    pipeline_ = std::make_unique<DatagramPipeline>(
        endpoint_, pc, [this](ReceiveError err) {
          ++counters_.in_rejected[static_cast<std::size_t>(err)];
        });
  }
  net::IpStack::SecurityHooks hooks;
  hooks.output = [this](net::Ipv4Header& h, util::Bytes& p) {
    return on_output(h, p);
  };
  hooks.input = [this](const net::Ipv4Header& h, util::Bytes& p) {
    return on_input(h, p);
  };
  if (pipeline_) {
    hooks.deferred_input = [this](const net::Ipv4Header& h, util::Bytes& p) {
      return on_deferred(h, p);
    };
  }
  hooks.header_overhead = endpoint_.max_wire_overhead();
  stack.set_security_hooks(std::move(hooks));
}

FlowAttributes FbsIpMapping::attributes_of(const net::Ipv4Header& header,
                                           util::BytesView payload) {
  FlowAttributes attrs;
  attrs.source_address = header.source.value;
  attrs.destination_address = header.destination.value;
  if (is_transport(header.protocol)) {
    attrs.protocol = header.protocol;
    if (const auto ports = net::peek_ports(payload)) {
      attrs.source_port = ports->source;
      attrs.destination_port = ports->destination;
    }
  } else {
    // Raw IP as a host-level flow (footnote 10): all non-transport traffic
    // between the pair shares one flow. aux marks the class so it can never
    // alias a real five-tuple.
    attrs.aux = 0x7261772D6970ull;  // "raw-ip"
  }
  return attrs;
}

bool FbsIpMapping::on_output(net::Ipv4Header& header, util::Bytes& payload) {
  if (!is_transport(header.protocol) && !config_.protect_raw_ip) {
    ++counters_.out_raw_ip;
    return true;
  }
  if (config_.bypass_hosts.contains(header.destination)) {
    ++counters_.out_bypassed;
    return true;
  }

  Datagram d;
  d.source = Principal::from_ipv4(header.source);
  d.destination = Principal::from_ipv4(header.destination);
  d.attrs = attributes_of(header, payload);
  d.body = std::move(payload);

  const bool secret =
      config_.secret_policy ? config_.secret_policy(d.attrs) : true;
  if (!endpoint_.protect_into(d, secret, scratch_wire_)) {
    // Fail closed: traffic must not leave unprotected when keying fails.
    ++counters_.out_dropped;
    payload = std::move(d.body);
    return false;
  }
  ++counters_.out_protected;
  std::swap(payload, scratch_wire_);
  // Recycle the plaintext buffer as next packet's wire staging.
  scratch_wire_ = std::move(d.body);
  return true;
}

bool FbsIpMapping::on_input(const net::Ipv4Header& header,
                            util::Bytes& payload) {
  if (!is_transport(header.protocol) && !config_.protect_raw_ip) {
    ++counters_.in_raw_ip;
    return true;
  }
  if (config_.bypass_hosts.contains(header.source)) {
    ++counters_.in_bypassed;
    return true;
  }

  const auto outcome = endpoint_.unprotect_into(
      Principal::from_ipv4(header.source), payload, scratch_body_);
  if (const auto* err = std::get_if<ReceiveError>(&outcome)) {
    ++counters_.in_rejected[static_cast<std::size_t>(*err)];
    return false;
  }
  ++counters_.in_accepted;
  // The old wire buffer (capacity >= any body it can carry) becomes next
  // packet's body staging, so the steady-state receive hook never allocates.
  std::swap(payload, scratch_body_);
  return true;
}

net::IpStack::DeferredVerdict FbsIpMapping::on_deferred(
    const net::Ipv4Header& header, util::Bytes& payload) {
  // Same exemptions as the sync hook: non-FBS traffic has no cryptography
  // to parallelize, so it takes the inline path (kProcessSync falls through
  // to on_input, which re-applies the bypass counters).
  if (!is_transport(header.protocol) && !config_.protect_raw_ip)
    return net::IpStack::DeferredVerdict::kProcessSync;
  if (config_.bypass_hosts.contains(header.source))
    return net::IpStack::DeferredVerdict::kProcessSync;

  if (!pipeline_->submit(header, std::move(payload)))
    return net::IpStack::DeferredVerdict::kDrop;  // ring full: backpressure
  ++counters_.in_deferred;
  return net::IpStack::DeferredVerdict::kConsumed;
}

std::size_t FbsIpMapping::drain_pipeline() {
  if (!pipeline_) return 0;
  return pipeline_->drain([this](const net::Ipv4Header& h, util::Bytes body) {
    ++counters_.in_accepted;
    stack_.deliver(h, std::move(body));
  });
}

void FbsIpMapping::drain_pipeline_all() {
  if (!pipeline_) return;
  pipeline_->drain_all([this](const net::Ipv4Header& h, util::Bytes body) {
    ++counters_.in_accepted;
    stack_.deliver(h, std::move(body));
  });
}

}  // namespace fbs::core
