#include "fbs/principal.hpp"

namespace fbs::core {

Principal Principal::from_ipv4(net::Ipv4Address ip) {
  return Principal{ip.to_bytes(), ip.to_string()};
}

void Principal::assign_ipv4(net::Ipv4Address ip) {
  address.resize(4);  // shrinking or same-size: never reallocates once warm
  address[0] = static_cast<std::uint8_t>(ip.value >> 24);
  address[1] = static_cast<std::uint8_t>(ip.value >> 16);
  address[2] = static_cast<std::uint8_t>(ip.value >> 8);
  address[3] = static_cast<std::uint8_t>(ip.value);
  name.clear();  // identity is the address; skip the display formatting
}

net::Ipv4Address Principal::ipv4() const {
  net::Ipv4Address ip;
  for (std::size_t i = 0; i < 4 && i < address.size(); ++i)
    ip.value = ip.value << 8 | address[i];
  return ip;
}

util::Bytes FlowAttributes::encode() const {
  util::Bytes out;
  encode_into(out);
  return out;
}

void FlowAttributes::encode_into(util::Bytes& out) const {
  out.resize(21);
  std::uint8_t* p = out.data();
  *p++ = protocol;
  for (int i = 3; i >= 0; --i)
    *p++ = static_cast<std::uint8_t>(source_address >> (8 * i));
  *p++ = static_cast<std::uint8_t>(source_port >> 8);
  *p++ = static_cast<std::uint8_t>(source_port);
  for (int i = 3; i >= 0; --i)
    *p++ = static_cast<std::uint8_t>(destination_address >> (8 * i));
  *p++ = static_cast<std::uint8_t>(destination_port >> 8);
  *p++ = static_cast<std::uint8_t>(destination_port);
  for (int i = 7; i >= 0; --i)
    *p++ = static_cast<std::uint8_t>(aux >> (8 * i));
}

}  // namespace fbs::core
