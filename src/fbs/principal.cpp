#include "fbs/principal.hpp"

namespace fbs::core {

Principal Principal::from_ipv4(net::Ipv4Address ip) {
  return Principal{ip.to_bytes(), ip.to_string()};
}

net::Ipv4Address Principal::ipv4() const {
  net::Ipv4Address ip;
  for (std::size_t i = 0; i < 4 && i < address.size(); ++i)
    ip.value = ip.value << 8 | address[i];
  return ip;
}

util::Bytes FlowAttributes::encode() const {
  util::ByteWriter w(19);
  w.u8(protocol);
  w.u32(source_address);
  w.u16(source_port);
  w.u32(destination_address);
  w.u16(destination_port);
  w.u64(aux);
  return w.take();
}

}  // namespace fbs::core
