#include "fbs/caches.hpp"

namespace fbs::core {

std::size_t cache_index(CacheHashKind kind, util::BytesView key,
                        std::size_t nsets) {
  if (nsets <= 1) return 0;
  switch (kind) {
    case CacheHashKind::kCrc32:
      return util::crc32(key) % nsets;
    case CacheHashKind::kModulo: {
      // Interpret the trailing 8 bytes as an integer -- the "simple modulo"
      // hash Section 5.3 warns provides little randomness on correlated
      // inputs.
      std::uint64_t v = 0;
      const std::size_t start = key.size() > 8 ? key.size() - 8 : 0;
      for (std::size_t i = start; i < key.size(); ++i) v = v << 8 | key[i];
      return v % nsets;
    }
    case CacheHashKind::kXorFold: {
      std::uint32_t v = 0;
      std::uint32_t word = 0;
      int n = 0;
      for (std::uint8_t b : key) {
        word = word << 8 | b;
        if (++n == 4) {
          v ^= word;
          word = 0;
          n = 0;
        }
      }
      if (n) v ^= word;
      return v % nsets;
    }
  }
  return 0;
}

std::size_t MissClassifier::stack_distance(util::BytesView key,
                                           std::size_t limit) const {
  // Bounded walk: callers only need to know whether the reuse distance is
  // below the cache capacity, so stop once `limit` entries are passed.
  std::size_t d = 0;
  for (const auto& k : lru_) {
    if (std::ranges::equal(k, key)) return d;
    if (++d >= limit) break;
  }
  return SIZE_MAX;
}

void MissClassifier::note_evicted(util::BytesView key) {
  if (ever_evicted_.empty()) ever_evicted_.assign(kBloomWords, 0);
  const std::uint64_t h1 = util::flow_hash64(key);
  const std::uint64_t h2 = util::mix64(h1) | 1;  // odd stride
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % (kBloomWords * 64);
    ever_evicted_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
}

bool MissClassifier::ever_evicted(util::BytesView key) const {
  if (ever_evicted_.empty()) return false;
  const std::uint64_t h1 = util::flow_hash64(key);
  const std::uint64_t h2 = util::mix64(h1) | 1;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % (kBloomWords * 64);
    if (!(ever_evicted_[bit >> 6] & std::uint64_t{1} << (bit & 63)))
      return false;
  }
  return true;
}

void MissClassifier::push_new(util::BytesView key) {
  lru_.emplace_front(key.begin(), key.end());
  pos_.try_emplace(lru_.front(), lru_.begin());
  stack_key_bytes_ += key.size();
  if (lru_.size() > max_depth_) {
    const util::Bytes& victim = lru_.back();
    note_evicted(victim);
    stack_key_bytes_ -= victim.size();
    pos_.erase(util::BytesView{victim});
    lru_.pop_back();
  }
}

MissClassifier::MissKind MissClassifier::classify_miss(util::BytesView key,
                                                       std::size_t capacity) {
  auto* it = pos_.find(key);
  if (it == nullptr) {
    // Not on the bounded stack. A key that fell off the far end has reuse
    // distance > max_depth >= capacity, so if it was ever evicted this is a
    // capacity miss; a genuinely new key is compulsory.
    const MissKind kind =
        ever_evicted(key) ? MissKind::kCapacity : MissKind::kCold;
    push_new(key);
    return kind;
  }
  const MissKind kind = stack_distance(key, capacity) < capacity
                            // A fully-associative cache of the same size
                            // would have hit: the miss is due to set
                            // conflicts only.
                            ? MissKind::kCollision
                            : MissKind::kCapacity;
  lru_.splice(lru_.begin(), lru_, *it);
  return kind;
}

void MissClassifier::record_hit(util::BytesView key) {
  // The node is spliced to the stack top in place: a cache hit costs no
  // allocation here. (A hit on a key the classifier never saw miss -- e.g.
  // one pinned directly into the cache -- still enters the stack.)
  auto* it = pos_.find(key);
  if (it != nullptr) {
    lru_.splice(lru_.begin(), lru_, *it);
    return;
  }
  push_new(key);
}

}  // namespace fbs::core
