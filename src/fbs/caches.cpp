#include "fbs/caches.hpp"

namespace fbs::core {

std::size_t cache_index(CacheHashKind kind, util::BytesView key,
                        std::size_t nsets) {
  if (nsets <= 1) return 0;
  switch (kind) {
    case CacheHashKind::kCrc32:
      return util::crc32(key) % nsets;
    case CacheHashKind::kModulo: {
      // Interpret the trailing 8 bytes as an integer -- the "simple modulo"
      // hash Section 5.3 warns provides little randomness on correlated
      // inputs.
      std::uint64_t v = 0;
      const std::size_t start = key.size() > 8 ? key.size() - 8 : 0;
      for (std::size_t i = start; i < key.size(); ++i) v = v << 8 | key[i];
      return v % nsets;
    }
    case CacheHashKind::kXorFold: {
      std::uint32_t v = 0;
      std::uint32_t word = 0;
      int n = 0;
      for (std::uint8_t b : key) {
        word = word << 8 | b;
        if (++n == 4) {
          v ^= word;
          word = 0;
          n = 0;
        }
      }
      if (n) v ^= word;
      return v % nsets;
    }
  }
  return 0;
}

std::size_t MissClassifier::stack_distance(const util::Bytes& key,
                                           std::size_t limit) const {
  // Bounded walk: callers only need to know whether the reuse distance is
  // below the cache capacity, so stop once `limit` entries are passed.
  std::size_t d = 0;
  for (const auto& k : lru_) {
    if (k == key) return d;
    if (++d >= limit) break;
  }
  return SIZE_MAX;
}

void MissClassifier::touch(const util::Bytes& key) {
  const auto it = pos_.find(key);
  if (it != pos_.end()) lru_.erase(it->second);
  lru_.push_front(key);
  pos_[key] = lru_.begin();
}

MissClassifier::MissKind MissClassifier::classify_miss(const util::Bytes& key,
                                                       std::size_t capacity) {
  MissKind kind;
  if (pos_.find(key) == pos_.end()) {
    kind = MissKind::kCold;
  } else if (stack_distance(key, capacity) < capacity) {
    // A fully-associative cache of the same size would have hit: the miss is
    // due to set conflicts only.
    kind = MissKind::kCollision;
  } else {
    kind = MissKind::kCapacity;
  }
  touch(key);
  return kind;
}

void MissClassifier::record_hit(const util::Bytes& key) { touch(key); }

}  // namespace fbs::core
