#include "fbs/caches.hpp"

namespace fbs::core {

std::size_t cache_index(CacheHashKind kind, util::BytesView key,
                        std::size_t nsets) {
  if (nsets <= 1) return 0;
  switch (kind) {
    case CacheHashKind::kCrc32:
      return util::crc32(key) % nsets;
    case CacheHashKind::kModulo: {
      // Interpret the trailing 8 bytes as an integer -- the "simple modulo"
      // hash Section 5.3 warns provides little randomness on correlated
      // inputs.
      std::uint64_t v = 0;
      const std::size_t start = key.size() > 8 ? key.size() - 8 : 0;
      for (std::size_t i = start; i < key.size(); ++i) v = v << 8 | key[i];
      return v % nsets;
    }
    case CacheHashKind::kXorFold: {
      std::uint32_t v = 0;
      std::uint32_t word = 0;
      int n = 0;
      for (std::uint8_t b : key) {
        word = word << 8 | b;
        if (++n == 4) {
          v ^= word;
          word = 0;
          n = 0;
        }
      }
      if (n) v ^= word;
      return v % nsets;
    }
  }
  return 0;
}

std::size_t MissClassifier::stack_distance(util::BytesView key,
                                           std::size_t limit) const {
  // Bounded walk: callers only need to know whether the reuse distance is
  // below the cache capacity, so stop once `limit` entries are passed.
  std::size_t d = 0;
  for (const auto& k : lru_) {
    if (std::ranges::equal(k, key)) return d;
    if (++d >= limit) break;
  }
  return SIZE_MAX;
}

MissClassifier::MissKind MissClassifier::classify_miss(util::BytesView key,
                                                       std::size_t capacity) {
  const auto it = pos_.find(key);
  if (it == pos_.end()) {
    lru_.emplace_front(key.begin(), key.end());
    pos_.emplace(lru_.front(), lru_.begin());
    return MissKind::kCold;
  }
  const MissKind kind = stack_distance(key, capacity) < capacity
                            // A fully-associative cache of the same size
                            // would have hit: the miss is due to set
                            // conflicts only.
                            ? MissKind::kCollision
                            : MissKind::kCapacity;
  lru_.splice(lru_.begin(), lru_, it->second);
  return kind;
}

void MissClassifier::record_hit(util::BytesView key) {
  // The node is spliced to the stack top in place: a cache hit costs no
  // allocation here. (A hit on a key the classifier never saw miss -- e.g.
  // one pinned directly into the cache -- still enters the stack.)
  const auto it = pos_.find(key);
  if (it != pos_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key.begin(), key.end());
  pos_.emplace(lru_.front(), lru_.begin());
}

}  // namespace fbs::core
