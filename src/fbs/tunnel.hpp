// Gateway-to-gateway FBS: the "host/gateway to host/gateway security" of
// Section 7.1, i.e. the VPN topology. Two security gateways protect all
// traffic between their networks; inside hosts run no FBS at all.
//
// The flow abstraction still pays off at the gateway: instead of one bulk
// key per gateway pair (host-pair keying at gateway granularity), the
// tunnel classifies the *inner* packet's five-tuple, so every end-to-end
// conversation crossing the tunnel gets its own sfl and key between the
// gateways -- compromise of one conversation's key exposes nothing else.
//
// Encapsulation: outer IP (gw -> gw, proto 253) | FBS header | inner IP
// packet (encrypted). The ingress gateway steals packets from the forward
// path (IpStack::ForwardFilter); the egress gateway unprotects and forwards
// the inner packet toward its destination.
#pragma once

#include <vector>

#include "fbs/engine.hpp"
#include "net/stack.hpp"

namespace fbs::core {

class FbsTunnel {
 public:
  /// `stack` must have forwarding enabled; `keys` resolves *gateway*
  /// principals (IPv4 addresses of the gateways).
  FbsTunnel(net::IpStack& stack, KeyManager& keys, const util::Clock& clock,
            util::RandomSource& rng, const FbsConfig& config = {});

  /// Traffic forwarded toward network/prefix_len is tunneled to
  /// `remote_gateway` instead of plainly forwarded.
  void add_remote_network(net::Ipv4Address network, int prefix_len,
                          net::Ipv4Address remote_gateway);

  struct Counters {
    std::uint64_t encapsulated = 0;
    std::uint64_t decapsulated = 0;
    std::uint64_t key_unavailable = 0;
    std::uint64_t rejected = 0;
    std::uint64_t inner_malformed = 0;
  };
  const Counters& counters() const { return counters_; }
  FbsEndpoint& endpoint() { return endpoint_; }

  /// Publish the endpoint's metrics plus the tunnel counters as pull
  /// sources under `<prefix>.` names.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

 private:
  bool on_forward(const net::Ipv4Header& inner, const util::Bytes& payload);
  void on_tunnel_packet(const net::Ipv4Header& outer, util::Bytes payload);
  const net::Ipv4Address* remote_gateway_for(net::Ipv4Address dst) const;

  struct RemoteNet {
    std::uint32_t network;
    int prefix_len;
    net::Ipv4Address gateway;
  };

  net::IpStack& stack_;
  FbsEndpoint endpoint_;
  std::vector<RemoteNet> remotes_;
  Counters counters_;

  /// Encapsulation staging reused across packets (a gateway forwards a
  /// stream of them); warm steady state adds no per-packet allocations.
  util::Bytes scratch_wire_;
  util::Bytes scratch_inner_;
};

}  // namespace fbs::core
