#include "fbs/app_map.hpp"

namespace fbs::core {

Principal app_principal(net::Ipv4Address host, std::uint16_t app_port) {
  Principal p;
  p.address = host.to_bytes();
  p.address.push_back(static_cast<std::uint8_t>(app_port >> 8));
  p.address.push_back(static_cast<std::uint8_t>(app_port));
  p.name = host.to_string() + "#" + std::to_string(app_port);
  return p;
}

AppEndpoint::AppEndpoint(net::UdpService& udp, net::Ipv4Address host,
                         std::uint16_t app_port, KeyManager& keys,
                         const util::Clock& clock, util::RandomSource& rng,
                         const FbsConfig& config)
    : udp_(udp),
      app_port_(app_port),
      endpoint_(app_principal(host, app_port), config, keys, clock, rng) {
  udp_.bind(app_port_, [this](net::Ipv4Address source,
                              std::uint16_t source_port,
                              util::Bytes payload) {
    on_datagram(source, source_port, std::move(payload));
  });
}

bool AppEndpoint::send(net::Ipv4Address host, std::uint16_t app_port,
                       std::uint64_t conversation, util::BytesView data,
                       bool secret) {
  Datagram d;
  d.source = endpoint_.self();
  d.destination = app_principal(host, app_port);
  // The FAM classifies on the conversation: one flow per conversation
  // between this ordered pair of application principals.
  d.attrs.aux = conversation;
  d.attrs.source_port = app_port_;
  d.attrs.destination_port = app_port;
  d.attrs.source_address = endpoint_.self().ipv4().value;
  d.attrs.destination_address = host.value;
  // The conversation id must survive to the receiver for demultiplexing;
  // it rides inside the protected body so it is authenticated (and hidden,
  // when secret) along with the data.
  util::ByteWriter body(8 + data.size());
  body.u64(conversation);
  body.bytes(data);
  d.body = body.take();

  const auto wire = endpoint_.protect(d, secret);
  if (!wire) return false;
  ++counters_.sent;
  return udp_.send(host, app_port_, app_port, *wire);
}

void AppEndpoint::on_datagram(net::Ipv4Address source,
                              std::uint16_t source_port,
                              util::Bytes payload) {
  const Principal claimed = app_principal(source, source_port);
  auto outcome = endpoint_.unprotect(claimed, payload);
  if (std::holds_alternative<ReceiveError>(outcome)) {
    ++counters_.rejected;
    return;
  }
  auto& received = std::get<ReceivedDatagram>(outcome);
  util::ByteReader r(received.datagram.body);
  const auto conversation = r.u64();
  if (!conversation) {
    ++counters_.malformed;
    return;
  }
  ++counters_.received;
  if (handler_) handler_(claimed, *conversation, r.rest());
}

}  // namespace fbs::core
