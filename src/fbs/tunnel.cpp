#include "fbs/tunnel.hpp"

#include "net/headers.hpp"

namespace fbs::core {

FbsTunnel::FbsTunnel(net::IpStack& stack, KeyManager& keys,
                     const util::Clock& clock, util::RandomSource& rng,
                     const FbsConfig& config)
    : stack_(stack),
      endpoint_(Principal::from_ipv4(stack.address()), config, keys, clock,
                rng) {
  stack_.set_forward_filter(
      [this](const net::Ipv4Header& inner, const util::Bytes& payload) {
        return on_forward(inner, payload);
      });
  stack_.register_protocol(
      net::IpProto::kFbsTunnel,
      [this](const net::Ipv4Header& outer, util::Bytes payload) {
        on_tunnel_packet(outer, std::move(payload));
      });
}

void FbsTunnel::add_remote_network(net::Ipv4Address network, int prefix_len,
                                   net::Ipv4Address remote_gateway) {
  remotes_.push_back(RemoteNet{network.value, prefix_len, remote_gateway});
}

const net::Ipv4Address* FbsTunnel::remote_gateway_for(
    net::Ipv4Address dst) const {
  const RemoteNet* best = nullptr;
  for (const RemoteNet& r : remotes_) {
    const std::uint32_t mask =
        r.prefix_len == 0 ? 0 : ~0u << (32 - r.prefix_len);
    if ((dst.value & mask) == (r.network & mask)) {
      if (!best || r.prefix_len > best->prefix_len) best = &r;
    }
  }
  return best ? &best->gateway : nullptr;
}

bool FbsTunnel::on_forward(const net::Ipv4Header& inner,
                           const util::Bytes& payload) {
  const net::Ipv4Address* remote = remote_gateway_for(inner.destination);
  if (!remote) return false;  // not ours: forward plainly

  // Classify on the INNER conversation so each end-to-end five-tuple gets
  // its own flow between the gateways.
  Datagram d;
  d.source = Principal::from_ipv4(stack_.address());
  d.destination = Principal::from_ipv4(*remote);
  d.attrs.protocol = inner.protocol;
  d.attrs.source_address = inner.source.value;
  d.attrs.destination_address = inner.destination.value;
  if (const auto ports = net::peek_ports(payload)) {
    d.attrs.source_port = ports->source;
    d.attrs.destination_port = ports->destination;
  }
  d.body = inner.serialize(payload);  // the whole inner packet

  if (!endpoint_.protect_into(d, /*secret=*/true, scratch_wire_)) {
    ++counters_.key_unavailable;
    return true;  // consumed: fail closed, never leak across the wild side
  }
  ++counters_.encapsulated;
  stack_.output(*remote, net::IpProto::kFbsTunnel, scratch_wire_);
  return true;
}

void FbsTunnel::on_tunnel_packet(const net::Ipv4Header& outer,
                                 util::Bytes payload) {
  const auto outcome = endpoint_.unprotect_into(
      Principal::from_ipv4(outer.source), payload, scratch_inner_);
  if (std::holds_alternative<ReceiveError>(outcome)) {
    ++counters_.rejected;
    return;
  }
  auto inner = net::Ipv4Header::parse(scratch_inner_);
  if (!inner) {
    ++counters_.inner_malformed;
    return;
  }
  ++counters_.decapsulated;
  // Hand the inner packet onward: to a local host on our network, or (if
  // we are a hop in a longer chain) toward the next gateway.
  stack_.forward_packet(inner->header, inner->payload);
}

}  // namespace fbs::core
