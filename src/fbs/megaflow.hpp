// Million-flow FAM policy: budgeted flat-hash flow table with timer-wheel
// expiry (ROADMAP item 2, DESIGN.md 5i).
//
// The paper's FiveTuplePolicy is a direct-mapped table sized for a campus
// LAN: collisions prematurely terminate flows (footnote 11), and the
// sweeper walks every slot. Both choices fall over at internet scale -- at
// a million concurrent flows a direct-mapped table of any affordable size
// is mostly collisions, and an O(table) sweep costs a table walk per
// sweeper period no matter how few flows actually expired. This policy
// keeps the paper's *semantics* (same five-tuple identity, same THRESHOLD
// staleness predicate via flow_expired(), same soft-state discipline) on
// production-scale structures:
//
//   - Entries live in a contiguous slab, indexed by dense 32-bit ids handed
//     out from a free list. The slab is reserved to the budget up front.
//   - A FlatMap maps FlowAttributes -> slab id. Exact matching: no flow is
//     ever terminated by a hash collision.
//   - A hierarchical TimerWheel holds one timer per flow at its expiry
//     deadline (last + THRESHOLD). sweep() advances the wheel and costs
//     O(expired), not O(table); the mapper's per-datagram cost stays O(1)
//     because a hit does NOT touch the wheel -- the timer fires at the
//     *old* deadline, notices the flow was active since, and lazily re-arms
//     for the new one.
//   - `max_flows` is a hard budget: when the table is full, the flow with
//     the (approximately) earliest deadline -- the longest idle -- is
//     evicted to make room, and the eviction pressure is counted. With the
//     map, slab, and wheel all reserved at construction, steady state
//     performs zero heap growth (asserted via rehashes()/slab_grows).
//
// Eviction is soft-state-safe for exactly the reason sweeping is: a
// datagram for an evicted flow simply starts a fresh flow with a fresh sfl
// and key. Budget pressure costs key derivations, never correctness.
#pragma once

#include <cstdint>

#include "fbs/fam.hpp"
#include "util/flat_map.hpp"
#include "util/flow_hash.hpp"
#include "util/timer_wheel.hpp"

namespace fbs::core {

/// Full-avalanche hash over the five-tuple-plus-aux, built from the shard
/// hash family (flow_hash_combine), not the cache_index family -- see
/// flow_hash.hpp on keeping the two decorrelated.
struct FlowAttrsHash {
  std::uint64_t operator()(const FlowAttributes& a) const {
    std::uint64_t h = util::mix64(
        static_cast<std::uint64_t>(a.source_address) << 32 |
        a.destination_address);
    h = util::flow_hash_combine(
        h, static_cast<std::uint64_t>(a.source_port) << 32 |
               static_cast<std::uint64_t>(a.destination_port) << 16 |
               a.protocol);
    return util::flow_hash_combine(h, a.aux);
  }
};

class MegaflowPolicy final : public FlowPolicy {
 public:
  /// `max_flows`: hard per-shard budget (slab/map/wheel are reserved for it
  /// at construction). `tick_shift`: wheel tick granularity, log2
  /// microseconds (default ~1.05 s ticks; see timer_wheel.hpp).
  MegaflowPolicy(std::size_t max_flows, util::TimeUs threshold,
                 SflAllocator& sfl_alloc, bool expire_in_mapper = true,
                 unsigned tick_shift = 20);

  std::string name() const override;
  MapResult map(const Datagram& d, util::TimeUs now) override;
  std::size_t sweep(util::TimeUs now) override;
  void expire_flow(const FlowAttributes& attrs) override;
  const FlowStateEntry* find(const FlowAttributes& attrs) const override;
  std::size_t active_flows(util::TimeUs now) const override;
  void clear() override;
  const FamStats& stats() const override { return stats_; }
  const MegaflowStats* mega_stats() const override;

  util::TimeUs threshold() const { return threshold_; }
  std::size_t max_flows() const { return max_flows_; }
  std::size_t live_flows() const { return live_; }
  const util::TimerWheel& wheel() const { return wheel_; }

 private:
  std::uint32_t alloc_slot();
  void retire(std::uint32_t idx);
  FlowStateEntry& start_flow(FlowStateEntry& e, const FlowAttributes& attrs,
                             util::TimeUs now, std::uint64_t bytes);

  std::size_t max_flows_;
  util::TimeUs threshold_;
  SflAllocator& sfl_alloc_;
  bool expire_in_mapper_;

  std::vector<FlowStateEntry> slab_;
  std::vector<std::uint32_t> free_;  // retired slab ids, reused LIFO
  util::FlatMap<FlowAttributes, std::uint32_t, FlowAttrsHash> map_;
  util::TimerWheel wheel_;
  std::size_t slab_reserved_ = 0;  // capacity after construction
  std::size_t live_ = 0;

  FamStats stats_;
  mutable MegaflowStats mega_;  // refreshed by mega_stats()
};

}  // namespace fbs::core
