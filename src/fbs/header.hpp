// The security flow header (Figure 2), with the field sizes of the paper's
// IP implementation (Section 7.2): sfl 64 bits, confounder 32 bits,
// timestamp 32 bits (minutes since 00:00 GMT 1996-01-01), MAC 128 bits for
// MD5 suites (160 for SHS suites). We additionally carry the one-byte
// algorithm identification field Section 5.2 calls for but leaves out, plus
// a flags byte recording whether the body is encrypted.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/algorithms.hpp"
#include "fbs/principal.hpp"
#include "util/bytes.hpp"

namespace fbs::core {

struct FbsHeader {
  /// Fixed part: flags(1) + suite(1) + sfl(8) + confounder(4) + timestamp(4).
  static constexpr std::size_t kFixedSize = 18;

  Sfl sfl = 0;
  std::uint32_t confounder = 0;
  std::uint32_t timestamp_minutes = 0;
  util::Bytes mac;  // size determined by the suite's MAC algorithm
  crypto::AlgorithmSuite suite;
  bool secret = false;  // body is encrypted

  std::size_t wire_size() const { return kFixedSize + mac.size(); }

  /// Serialize the header (MAC field included verbatim).
  util::Bytes serialize() const;

  /// Parse the header off the front of `wire`; the remainder is the
  /// (possibly encrypted) datagram body. nullopt on truncation or an
  /// unknown algorithm suite.
  struct ParsedOut;
  static std::optional<ParsedOut> parse(util::BytesView wire);

  /// Wire overhead of a header using `suite` (for tcp_output-style sizing).
  static std::size_t overhead(crypto::AlgorithmSuite suite);
};

struct FbsHeader::ParsedOut {
  FbsHeader header;
  util::Bytes body;
};

/// Non-owning header view for the allocation-free datagram path: `mac` and
/// `body` alias the wire buffer handed to parse(), which must outlive the
/// view. Field meanings match FbsHeader.
struct FbsHeaderView {
  Sfl sfl = 0;
  std::uint32_t confounder = 0;
  std::uint32_t timestamp_minutes = 0;
  util::BytesView mac;
  crypto::AlgorithmSuite suite;
  bool secret = false;
  util::BytesView body;  // remainder of the wire after the header

  /// Allocation-free counterpart of FbsHeader::parse.
  static std::optional<FbsHeaderView> parse(util::BytesView wire);

  /// The wire flags byte (version nibble + secret bit; reserved bits are
  /// always zero -- parse rejects anything else). Together with the suite
  /// byte this is part of the MAC input: every header bit an attacker can
  /// flip is either MAC-covered or independently validated.
  std::uint8_t flags_byte() const;
  std::uint8_t suite_byte() const { return crypto::encode_suite(suite); }

  /// Append the serialized header (fixed fields then MAC; `body` is NOT
  /// written) to `out`, reusing its capacity.
  void serialize_into(util::Bytes& out) const;
};

}  // namespace fbs::core
