// Adapters that publish the protocol's ad-hoc stats structs into an
// obs::MetricsRegistry under stable dotted names.
//
// Each register_metrics overload installs a *pull source*: the registry
// reads the referenced struct at snapshot() time, so hot-path increments
// stay plain ++field and nothing changes for code that never snapshots.
// The referenced object must outlive the registry.
//
// Naming scheme (see DESIGN.md):
//   <prefix>.send.datagrams            SendStats
//   <prefix>.recv.rejected.bad-mac     ReceiveStats, kinds from to_string()
//   <prefix>.hits / .misses.cold       CacheStats 3C taxonomy
//   <prefix>.fam.flows_created         FamStats
//   <prefix>.freshness.replays         FreshnessChecker::Stats
//   <prefix>.mkd.upcalls               MkdStats
#pragma once

#include <string>

#include "fbs/caches.hpp"
#include "fbs/engine.hpp"
#include "fbs/fam.hpp"
#include "fbs/keying.hpp"
#include "fbs/replay.hpp"
#include "obs/metrics.hpp"

namespace fbs::core {

void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const CacheStats& stats);
void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const SendStats& stats);
void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const ReceiveStats& stats);
void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const FamStats& stats);
void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix,
                      const FreshnessChecker::Stats& stats);
void register_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix, const MkdStats& stats);

}  // namespace fbs::core
