// Shared world for the cross-process UDP loopback pair (udp_loopback_responder
// / udp_loopback_initiator): the first time FBS moves real packets.
//
// FBS keying is zero-message (Section 4): a flow key derives from the
// *certified public values* of the two parties, so two processes can
// interoperate with no key-exchange traffic as long as they agree on the
// certificate world. Both binaries build that world identically from one
// fixed seed -- same CA, same two Diffie-Hellman keypairs generated in the
// same order, same certificates published to each process's local directory
// (the directory fetch is a local bypass in the paper too). Each process
// then keeps only its OWN private value for its master-key daemon; the
// peer's key never crosses the process boundary, exactly as deployed hosts
// would hold their own long-term secrets. Everything after that -- flow
// setup, MACs, DES-CBC bodies, replay windows -- happens over the real UDP
// socket between the processes.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "cert/certificate.hpp"
#include "cert/directory.hpp"
#include "crypto/dh.hpp"
#include "fbs/ip_map.hpp"
#include "net/pcap.hpp"
#include "net/udp.hpp"
#include "net/udp_transport.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace fbs::examples {

// One seed, one world: both processes must use the same value.
constexpr std::uint64_t kWorldSeed = 0xFB5'96'01'01;

// FBS-layer addresses (what the IP headers and flow attributes carry); the
// socket layer underneath is 127.0.0.1:<ephemeral>.
inline net::Ipv4Address initiator_address() {
  return *net::Ipv4Address::parse("10.77.0.1");
}
inline net::Ipv4Address responder_address() {
  return *net::Ipv4Address::parse("10.77.0.2");
}

constexpr std::uint16_t kInitiatorPort = 4000;  // FBS-layer UDP ports
constexpr std::uint16_t kResponderPort = 7777;

struct LoopbackHost {
  util::SteadyClock clock;
  util::SplitMix64 rng{kWorldSeed};
  std::unique_ptr<cert::CertificateAuthority> ca;
  std::unique_ptr<cert::DirectoryService> directory;
  std::unique_ptr<net::UdpTransport> transport;
  std::unique_ptr<core::MasterKeyDaemon> mkd;
  std::unique_ptr<core::KeyManager> keys;
  std::unique_ptr<net::IpStack> stack;
  std::unique_ptr<core::FbsIpMapping> fbs;
  std::unique_ptr<net::UdpService> udp;
  std::unique_ptr<net::PcapWriter> pcap;
};

/// Build one side of the deterministic world. `initiator` picks which of
/// the two enrolled identities this process embodies; `bind_port` 0 asks
/// the kernel for an ephemeral socket port (read it back via
/// host.transport->local_port()).
inline bool make_loopback_host(LoopbackHost& host, bool initiator,
                               std::uint16_t bind_port,
                               const std::string& pcap_path) {
  // Identical derivation in both processes: CA first, then the initiator's
  // DH keypair, then the responder's, all off the one seeded generator.
  host.ca = std::make_unique<cert::CertificateAuthority>(512, host.rng);
  host.directory = std::make_unique<cert::DirectoryService>();
  const auto& group = crypto::oakley_group1();
  const crypto::DhKeyPair dh_init = crypto::dh_generate(group, host.rng);
  const crypto::DhKeyPair dh_resp = crypto::dh_generate(group, host.rng);

  const auto enroll = [&](net::Ipv4Address addr,
                          const crypto::DhKeyPair& dh) {
    host.directory->publish(host.ca->issue(
        core::Principal::from_ipv4(addr).address, group.name,
        dh.public_value.to_bytes_be(group.element_size()), 0,
        host.clock.now() + util::minutes(60 * 24)));
  };
  enroll(initiator_address(), dh_init);
  enroll(responder_address(), dh_resp);

  const net::Ipv4Address self =
      initiator ? initiator_address() : responder_address();
  const crypto::DhKeyPair& own = initiator ? dh_init : dh_resp;

  // The world derivation above must be byte-identical in both processes;
  // everything after it (sfl draws, confounders) must NOT be -- fork the
  // session generator per role so the two sides' flow labels differ.
  host.rng = util::SplitMix64(kWorldSeed ^ (initiator ? 0x1111u : 0x2222u));

  net::UdpTransportConfig tcfg;
  tcfg.bind_port = bind_port;
  host.transport = std::make_unique<net::UdpTransport>(host.clock, tcfg);
  if (!host.transport->ok()) {
    std::fprintf(stderr, "transport: %s\n", host.transport->error().c_str());
    return false;
  }
  if (!pcap_path.empty()) {
    host.pcap = std::make_unique<net::PcapWriter>(pcap_path, host.clock);
    if (!host.pcap->ok()) {
      std::fprintf(stderr, "pcap: cannot write %s\n", pcap_path.c_str());
      return false;
    }
  }

  host.mkd = std::make_unique<core::MasterKeyDaemon>(
      core::Principal::from_ipv4(self), own.private_value, group, *host.ca,
      *host.directory, host.clock);
  host.keys = std::make_unique<core::KeyManager>(*host.mkd);
  host.stack = std::make_unique<net::IpStack>(*host.transport, host.clock,
                                              self);
  core::IpMappingConfig mcfg;
  mcfg.fbs.strict_replay = true;  // the interop test injects replays
  host.fbs = std::make_unique<core::FbsIpMapping>(
      *host.stack, mcfg, *host.keys, host.clock, host.rng);
  host.udp = std::make_unique<net::UdpService>(*host.stack);
  return true;
}

}  // namespace fbs::examples
