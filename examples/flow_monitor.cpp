// Flow monitor: the Section 7.3 methodology as a tool. Generates (or loads)
// a packet trace, applies the Section 7.1 security flow policy, and prints
// the flow characteristics a deployment planner needs: flow counts, sizes,
// durations, active-flow levels, repeated flows, and recommended cache
// sizes.
//
// Usage:
//   flow_monitor                      # 30 min synthetic campus trace
//   flow_monitor <minutes> [seed]     # longer/different synthetic trace
//   flow_monitor --load <trace.txt>   # replay a saved trace file
//   flow_monitor --save <trace.txt>   # generate and save, then analyze
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "trace/flowsim.hpp"
#include "trace/synth.hpp"
#include "util/histogram.hpp"

using namespace fbs;

int main(int argc, char** argv) {
  trace::Trace t;
  std::string mode = argc > 1 ? argv[1] : "";

  if (mode == "--load" && argc > 2) {
    std::ifstream in(argv[2]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    auto loaded = trace::load_trace(in);
    if (!loaded) {
      std::fprintf(stderr, "malformed trace file\n");
      return 1;
    }
    t = std::move(*loaded);
    std::printf("loaded %zu packets from %s\n", t.size(), argv[2]);
  } else {
    const int minutes = (argc > 1 && mode[0] != '-') ? std::atoi(argv[1]) : 30;
    const std::uint64_t seed = argc > 2 && mode[0] != '-'
                                   ? std::strtoull(argv[2], nullptr, 10)
                                   : 1997;
    std::printf("generating %d minutes of campus LAN + WWW traffic "
                "(seed %llu) ...\n",
                minutes, static_cast<unsigned long long>(seed));
    t = trace::generate_campus_trace(seed, util::minutes(minutes));
    if (mode == "--save" && argc > 2) {
      std::ofstream out(argv[2]);
      trace::save_trace(t, out);
      std::printf("saved to %s\n", argv[2]);
    }
  }

  const trace::TraceSummary summary = trace::summarize(t);
  std::printf("\ntrace: %zu packets, %.2f MB, %zu five-tuples, %zu hosts\n",
              summary.packets, static_cast<double>(summary.bytes) / 1e6,
              summary.distinct_tuples, summary.distinct_hosts);

  trace::FlowSimConfig cfg;
  cfg.threshold = util::seconds(600);
  const trace::FlowSimResult r = trace::simulate_flows(t, cfg);

  std::printf("\n== flows under the five-tuple policy (THRESHOLD=600s) ==\n");
  std::printf("flows: %zu   repeated five-tuples: %llu   peak active: %zu   "
              "mean active: %.1f\n",
              r.flows.size(),
              static_cast<unsigned long long>(r.repeated_flows),
              r.peak_active, r.mean_active);

  util::LogHistogram packets(2.0), durations(2.0);
  for (const auto& f : r.flows) {
    packets.add(static_cast<double>(f.packets));
    durations.add(static_cast<double>(f.duration()) / util::kMicrosPerSecond);
  }
  std::printf("\npackets per flow:\n%s", packets.render("packets").c_str());
  std::printf("\nflow duration:\n%s", durations.render("seconds").c_str());

  // Top talkers.
  std::vector<const trace::FlowRecord*> by_bytes;
  by_bytes.reserve(r.flows.size());
  for (const auto& f : r.flows) by_bytes.push_back(&f);
  std::sort(by_bytes.begin(), by_bytes.end(),
            [](const auto* a, const auto* b) { return a->bytes > b->bytes; });
  std::printf("\ntop flows by bytes:\n");
  std::printf("%6s %-22s %-22s %8s %10s %10s\n", "proto", "source", "dest",
              "pkts", "bytes", "secs");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, by_bytes.size()); ++i) {
    const auto& f = *by_bytes[i];
    char src[32], dst[32];
    std::snprintf(src, sizeof src, "%s:%u",
                  net::Ipv4Address{f.tuple.source_address}.to_string().c_str(),
                  f.tuple.source_port);
    std::snprintf(
        dst, sizeof dst, "%s:%u",
        net::Ipv4Address{f.tuple.destination_address}.to_string().c_str(),
        f.tuple.destination_port);
    std::printf("%6u %-22s %-22s %8llu %10llu %10.1f\n", f.tuple.protocol,
                src, dst, static_cast<unsigned long long>(f.packets),
                static_cast<unsigned long long>(f.bytes),
                static_cast<double>(f.duration()) / util::kMicrosPerSecond);
  }

  // Cache-sizing advice from the measured miss curves (Section 5.3: size
  // caches to the average number of simultaneously active entries).
  std::printf("\nkey cache sizing (receive side, direct-mapped CRC-32):\n");
  const auto points = trace::simulate_cache_misses(
      t, cfg.threshold, {8, 16, 32, 64, 128, 256});
  std::size_t recommended = points.back().cache_size;
  for (const auto& p : points) {
    std::printf("  RFKC size %4zu -> miss rate %5.2f%%\n", p.cache_size,
                100.0 * p.receive.miss_rate());
    if (p.receive.miss_rate() < 0.02 && recommended == points.back().cache_size)
      recommended = p.cache_size;
  }
  std::printf("recommended RFKC size: %zu entries (first under 2%% misses; "
              "peak active flows were %zu)\n",
              recommended, r.peak_active);
  return 0;
}
