// Application-layer FBS: a conferencing session whose video, audio, and
// whiteboard streams are separate flows -- the example Section 4 opens
// with: "At the application layer, application data with different
// semantics (e.g., video, audio, and whiteboard data) could be separated
// into their own flows."
//
// Two things the network-layer mapping cannot give are on display:
//   1. Principals are applications (host, app-port), each with its own DH
//      keypair: the conferencing tool's keys are unrelated to any other
//      program on the same machine.
//   2. Flow boundaries follow application semantics (the conversation id),
//      not transport tuples: all three media share one UDP port yet get
//      three independent keys, and revoking/rekeying one stream touches
//      nothing else.
#include <cstdio>

#include "crypto/dh.hpp"
#include "net/simnet.hpp"
#include "fbs/app_map.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace fbs;

namespace {

constexpr std::uint64_t kVideo = 1;
constexpr std::uint64_t kAudio = 2;
constexpr std::uint64_t kWhiteboard = 3;

const char* stream_name(std::uint64_t conversation) {
  switch (conversation) {
    case kVideo: return "video";
    case kAudio: return "audio";
    case kWhiteboard: return "whiteboard";
  }
  return "?";
}

struct Station {
  net::Ipv4Address address;
  std::unique_ptr<net::IpStack> stack;
  std::unique_ptr<net::UdpService> udp;
  std::unique_ptr<core::MasterKeyDaemon> mkd;
  std::unique_ptr<core::KeyManager> keys;
  std::unique_ptr<core::AppEndpoint> app;
};

Station make_station(const char* ip, std::uint16_t app_port,
                     cert::CertificateAuthority& ca,
                     cert::DirectoryService& directory,
                     net::SimNetwork& network, util::Clock& clock,
                     util::RandomSource& rng) {
  Station s;
  s.address = *net::Ipv4Address::parse(ip);
  s.stack = std::make_unique<net::IpStack>(network, clock, s.address);
  s.udp = std::make_unique<net::UdpService>(*s.stack);

  const core::Principal principal = core::app_principal(s.address, app_port);
  const auto& group = crypto::test_group();
  const crypto::DhKeyPair dh = crypto::dh_generate(group, rng);
  directory.publish(ca.issue(principal.address, group.name,
                             dh.public_value.to_bytes_be(group.element_size()),
                             0, clock.now() + util::minutes(1000000)));
  s.mkd = std::make_unique<core::MasterKeyDaemon>(
      principal, dh.private_value, group, ca, directory, clock);
  s.keys = std::make_unique<core::KeyManager>(*s.mkd);
  s.app = std::make_unique<core::AppEndpoint>(*s.udp, s.address, app_port,
                                              *s.keys, clock, rng);
  return s;
}

}  // namespace

int main() {
  util::VirtualClock clock(util::minutes(9000));
  util::SplitMix64 rng(2026);
  cert::CertificateAuthority ca(512, rng);
  cert::DirectoryService directory;
  net::SimNetwork network(clock, 3);

  std::printf("== conferencing over application-layer FBS ==\n\n");
  constexpr std::uint16_t kConfPort = 7300;
  Station alice = make_station("10.0.0.1", kConfPort, ca, directory, network,
                               clock, rng);
  Station bob = make_station("10.0.0.2", kConfPort, ca, directory, network,
                             clock, rng);

  std::map<std::uint64_t, int> frames;
  bob.app->on_message([&](const core::Principal& from,
                          std::uint64_t conversation, util::BytesView data) {
    if (++frames[conversation] == 1) {
      std::printf("bob: first %s frame from %s (%zu bytes)\n",
                  stream_name(conversation), from.name.c_str(), data.size());
    }
  });

  // One "session": interleaved media on one UDP port, three conversations.
  for (int tick = 0; tick < 40; ++tick) {
    alice.app->send(bob.address, kConfPort, kVideo,
                    rng.next_bytes(1200));               // video: big frames
    if (tick % 2 == 0)
      alice.app->send(bob.address, kConfPort, kAudio,
                      rng.next_bytes(160));              // audio: small, regular
    if (tick % 10 == 0)
      alice.app->send(bob.address, kConfPort, kWhiteboard,
                      util::to_bytes("stroke{...}"));    // whiteboard: rare
    clock.advance(util::TimeUs{20'000});
    network.run();
  }

  std::printf("\nreceived frames: video=%d audio=%d whiteboard=%d\n",
              frames[kVideo], frames[kAudio], frames[kWhiteboard]);
  const auto& stats = alice.app->fbs().send_stats();
  std::printf("alice sent %llu datagrams on %llu flows (one key per media "
              "stream)\n",
              static_cast<unsigned long long>(stats.datagrams),
              static_cast<unsigned long long>(stats.flow_keys_derived));

  // Mid-session, rekey just the video stream (e.g. a viewer left).
  core::FlowAttributes video_flow;
  video_flow.aux = kVideo;
  video_flow.source_port = kConfPort;
  video_flow.destination_port = kConfPort;
  video_flow.source_address = alice.address.value;
  video_flow.destination_address = bob.address.value;
  alice.app->fbs().rekey(video_flow);
  alice.app->send(bob.address, kConfPort, kVideo, rng.next_bytes(1200));
  network.run();
  std::printf("video stream rekeyed mid-session: now %llu key derivations; "
              "audio and whiteboard keys untouched\n",
              static_cast<unsigned long long>(
                  alice.app->fbs().send_stats().flow_keys_derived));

  std::printf("\napplication principals: %s and %s -- their master key is "
              "theirs alone,\nnot shared with any other program on either "
              "host (contrast with IP host-pair keying).\n",
              alice.app->self().name.c_str(), bob.app->self().name.c_str());
  return frames[kVideo] > 0 && frames[kAudio] > 0 && frames[kWhiteboard] > 0
             ? 0
             : 1;
}
