// Quickstart: two hosts exchanging FBS-protected datagrams with zero-message
// keying.
//
// What happens below:
//   1. A certificate authority signs each host's Diffie-Hellman public value
//      and publishes it in a directory (the paper's X.509/secure-DNS role).
//   2. Each host runs an IP stack on a simulated segment with the FBS
//      mapping installed as the Section 7.2 hooks.
//   3. The first datagram from alice to bob silently establishes a flow:
//      bob's public value is fetched and verified, K_{A,B} = g^{ab} mod p is
//      computed, and the flow key K_f = MD5(sfl | K_{A,B} | A | B) is cached
//      -- all without a single key-exchange message between the two hosts.
//   4. Subsequent datagrams ride the cached flow key.
#include <cstdio>

#include "cert/certificate.hpp"
#include "net/simnet.hpp"
#include "cert/directory.hpp"
#include "crypto/dh.hpp"
#include "fbs/ip_map.hpp"
#include "net/udp.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace fbs;

namespace {

struct Host {
  core::Principal principal;
  std::unique_ptr<core::MasterKeyDaemon> mkd;
  std::unique_ptr<core::KeyManager> keys;
  std::unique_ptr<net::IpStack> stack;
  std::unique_ptr<core::FbsIpMapping> fbs;
  std::unique_ptr<net::UdpService> udp;
};

Host make_host(const char* ip, cert::CertificateAuthority& ca,
               cert::DirectoryService& directory, net::SimNetwork& network,
               util::Clock& clock, util::RandomSource& rng) {
  Host host;
  const auto address = *net::Ipv4Address::parse(ip);
  host.principal = core::Principal::from_ipv4(address);

  // Long-term keying: a DH keypair and a signed public-value certificate.
  const auto& group = crypto::oakley_group1();
  const crypto::DhKeyPair dh = crypto::dh_generate(group, rng);
  directory.publish(ca.issue(host.principal.address, group.name,
                             dh.public_value.to_bytes_be(group.element_size()),
                             0, clock.now() + util::minutes(60 * 24 * 365)));

  host.mkd = std::make_unique<core::MasterKeyDaemon>(
      host.principal, dh.private_value, group, ca, directory, clock);
  host.keys = std::make_unique<core::KeyManager>(*host.mkd);
  host.stack = std::make_unique<net::IpStack>(network, clock, address);
  host.fbs = std::make_unique<core::FbsIpMapping>(
      *host.stack, core::IpMappingConfig{}, *host.keys, clock, rng);
  host.udp = std::make_unique<net::UdpService>(*host.stack);
  return host;
}

}  // namespace

int main() {
  util::VirtualClock clock(util::minutes(1000));
  util::SplitMix64 rng(util::entropy_seed());

  std::printf("== FBS quickstart ==\n");
  std::printf("creating certificate authority (512-bit RSA) ...\n");
  cert::CertificateAuthority ca(512, rng);
  cert::DirectoryService directory(util::TimeUs{50'000}, &clock);

  net::SimNetwork network(clock, rng.next_u64());

  std::printf("enrolling alice (10.0.0.1) and bob (10.0.0.2), Oakley group 1 "
              "(768-bit) ...\n");
  Host alice = make_host("10.0.0.1", ca, directory, network, clock, rng);
  Host bob = make_host("10.0.0.2", ca, directory, network, clock, rng);

  bob.udp->bind(9000, [&](net::Ipv4Address from, std::uint16_t port,
                          util::Bytes payload) {
    std::printf("bob   <- %s:%u  \"%s\"\n", from.to_string().c_str(), port,
                util::to_string(payload).c_str());
  });

  std::printf("\nalice -> bob: three datagrams in one conversation "
              "(no key-exchange messages!)\n");
  for (const char* msg : {"hello bob", "this flow was keyed with zero "
                          "messages", "soft state only -- wipe any cache and "
                          "we keep going"}) {
    alice.udp->send(bob.stack->address(), 4000, 9000, util::to_bytes(msg));
    network.run();
  }

  const auto& send = alice.fbs->endpoint().send_stats();
  const auto& recv = bob.fbs->endpoint().receive_stats();
  std::printf("\nalice: %llu datagrams protected, %llu flow key(s) derived, "
              "%llu encrypted\n",
              static_cast<unsigned long long>(send.datagrams),
              static_cast<unsigned long long>(send.flow_keys_derived),
              static_cast<unsigned long long>(send.encrypted));
  std::printf("bob:   %llu accepted, %llu rejected, %llu flow key(s) "
              "derived\n",
              static_cast<unsigned long long>(recv.accepted),
              static_cast<unsigned long long>(recv.rejected()),
              static_cast<unsigned long long>(recv.flow_keys_derived));
  std::printf("directory fetches: %llu (one per peer, amortized by the "
              "PVC/MKC forever after)\n",
              static_cast<unsigned long long>(directory.fetch_count()));
  std::printf("\nFBS header overhead per datagram: %zu bytes\n",
              alice.fbs->endpoint().header_overhead());
  return 0;
}
