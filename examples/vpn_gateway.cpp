// Gateway-to-gateway FBS: the Section 7.1 "host/gateway to host/gateway"
// deployment, i.e. a site-to-site VPN. Two offices, each with plain
// (FBS-oblivious) hosts, joined by security gateways that tunnel all
// cross-site traffic -- one flow and one key per end-to-end conversation.
//
//   office A (10.1/16)            WAN              office B (10.2/16)
//   pc1 pc2 --- gwA(198.18.0.1) ========= gwB(198.18.0.2) --- srv
#include <cstdio>

#include "crypto/dh.hpp"
#include "net/simnet.hpp"
#include "fbs/tunnel.hpp"
#include "net/udp.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace fbs;

namespace {

struct Gateway {
  std::unique_ptr<net::IpStack> stack;
  std::unique_ptr<core::MasterKeyDaemon> mkd;
  std::unique_ptr<core::KeyManager> keys;
  std::unique_ptr<core::FbsTunnel> tunnel;
};

Gateway make_gateway(const char* wan_ip, cert::CertificateAuthority& ca,
                     cert::DirectoryService& directory,
                     net::SimNetwork& network, util::Clock& clock,
                     util::RandomSource& rng) {
  Gateway gw;
  const auto address = *net::Ipv4Address::parse(wan_ip);
  const core::Principal principal = core::Principal::from_ipv4(address);
  const auto& group = crypto::test_group();
  const crypto::DhKeyPair dh = crypto::dh_generate(group, rng);
  directory.publish(ca.issue(principal.address, group.name,
                             dh.public_value.to_bytes_be(group.element_size()),
                             0, clock.now() + util::minutes(1000000)));
  gw.mkd = std::make_unique<core::MasterKeyDaemon>(
      principal, dh.private_value, group, ca, directory, clock);
  gw.keys = std::make_unique<core::KeyManager>(*gw.mkd);
  gw.stack = std::make_unique<net::IpStack>(network, clock, address);
  gw.stack->enable_forwarding(true);
  gw.tunnel = std::make_unique<core::FbsTunnel>(*gw.stack, *gw.keys, clock,
                                                rng);
  return gw;
}

}  // namespace

int main() {
  util::VirtualClock clock(util::minutes(7777));
  util::SplitMix64 rng(31337);
  cert::CertificateAuthority ca(512, rng);
  cert::DirectoryService directory;
  net::SimNetwork network(clock, 8);

  std::printf("== site-to-site VPN with FBS gateways ==\n\n");
  std::printf("only the two GATEWAYS hold keys; office hosts run stock IP.\n\n");

  Gateway gwA = make_gateway("198.18.0.1", ca, directory, network, clock, rng);
  Gateway gwB = make_gateway("198.18.0.2", ca, directory, network, clock, rng);
  gwA.stack->add_route(*net::Ipv4Address::parse("10.2.0.0"), 16,
                       gwB.stack->address());
  gwB.stack->add_route(*net::Ipv4Address::parse("10.1.0.0"), 16,
                       gwA.stack->address());
  gwA.tunnel->add_remote_network(*net::Ipv4Address::parse("10.2.0.0"), 16,
                                 gwB.stack->address());
  gwB.tunnel->add_remote_network(*net::Ipv4Address::parse("10.1.0.0"), 16,
                                 gwA.stack->address());

  // Plain hosts.
  net::IpStack pc1(network, clock, *net::Ipv4Address::parse("10.1.0.11"));
  net::IpStack pc2(network, clock, *net::Ipv4Address::parse("10.1.0.12"));
  net::IpStack srv(network, clock, *net::Ipv4Address::parse("10.2.0.5"));
  pc1.set_default_route(gwA.stack->address());
  pc2.set_default_route(gwA.stack->address());
  srv.set_default_route(gwB.stack->address());
  net::UdpService pc1_udp(pc1), pc2_udp(pc2), srv_udp(srv);

  // Watch the WAN: nothing readable may cross it.
  std::size_t wan_frames = 0;
  bool leaked = false;
  const util::Bytes needle = util::to_bytes("quarterly numbers");
  network.set_tap([&](net::Ipv4Address from, net::Ipv4Address to,
                      util::Bytes& f) {
    const bool wan = (from == gwA.stack->address() &&
                      to == gwB.stack->address()) ||
                     (from == gwB.stack->address() &&
                      to == gwA.stack->address());
    if (wan) {
      ++wan_frames;
      if (std::search(f.begin(), f.end(), needle.begin(), needle.end()) !=
          f.end())
        leaked = true;
    }
    return net::SimNetwork::TapVerdict::kPass;
  });

  srv_udp.bind(5432, [&](net::Ipv4Address from, std::uint16_t sport,
                         util::Bytes payload) {
    std::printf("srv  <- %s:%u  \"%s\"\n", from.to_string().c_str(), sport,
                util::to_string(payload).c_str());
    srv_udp.send(from, 5432, sport, util::to_bytes("ack"));
  });
  pc1_udp.bind(4001, [&](net::Ipv4Address, std::uint16_t, util::Bytes p) {
    std::printf("pc1  <- srv  \"%s\"\n", util::to_string(p).c_str());
  });
  pc2_udp.bind(4002, [&](net::Ipv4Address, std::uint16_t, util::Bytes p) {
    std::printf("pc2  <- srv  \"%s\"\n", util::to_string(p).c_str());
  });

  std::printf("pc1 and pc2 talk to the database server across the WAN:\n");
  pc1_udp.send(srv.address(), 4001, 5432,
               util::to_bytes("SELECT quarterly numbers"));
  pc2_udp.send(srv.address(), 4002, 5432,
               util::to_bytes("INSERT quarterly numbers"));
  network.run();

  std::printf("\nWAN saw %zu frames, plaintext leaked: %s\n", wan_frames,
              leaked ? "YES (bug!)" : "no");
  std::printf("gwA: %llu packets encapsulated on %llu flows (one per "
              "end-to-end conversation, not one bulk pipe)\n",
              static_cast<unsigned long long>(
                  gwA.tunnel->counters().encapsulated),
              static_cast<unsigned long long>(
                  gwA.tunnel->endpoint().send_stats().flow_keys_derived));
  std::printf("gwB: %llu packets decapsulated, %llu rejected\n",
              static_cast<unsigned long long>(
                  gwB.tunnel->counters().decapsulated),
              static_cast<unsigned long long>(gwB.tunnel->counters().rejected));
  return leaked ? 1 : 0;
}
