// Initiator half of the cross-process FBS loopback pair.
//
// Connects to the responder's real UDP socket, establishes an FBS flow with
// zero key-exchange messages (the first protected datagram carries
// everything), sends `count` datagrams, and waits for every echo to come
// back MAC-verified. It then replays `replays` of its own captured wire
// frames verbatim -- the classic recorded-datagram attack -- which the
// responder's strict replay cache must reject. Exits 0 only when all echoes
// arrived and the replays were put on the wire.
//
//   udp_loopback_initiator --peer-port P [--count N] [--replays M]
//                          [--pcap FILE] [--timeout-ms T]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "examples/udp_loopback_common.hpp"

using namespace fbs;

int main(int argc, char** argv) {
  std::uint16_t peer_port = 0;
  std::uint64_t count = 8;
  std::uint64_t replays = 0;
  std::string pcap_path;
  long timeout_ms = 30'000;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--peer-port") peer_port = static_cast<std::uint16_t>(std::atoi(argv[i + 1]));
    else if (flag == "--count") count = std::strtoull(argv[i + 1], nullptr, 10);
    else if (flag == "--replays") replays = std::strtoull(argv[i + 1], nullptr, 10);
    else if (flag == "--pcap") pcap_path = argv[i + 1];
    else if (flag == "--timeout-ms") timeout_ms = std::atol(argv[i + 1]);
    else { std::fprintf(stderr, "unknown flag %s\n", flag.c_str()); return 2; }
  }
  if (peer_port == 0) {
    std::fprintf(stderr, "--peer-port is required\n");
    return 2;
  }

  examples::LoopbackHost host;
  if (!examples::make_loopback_host(host, /*initiator=*/true, 0, pcap_path)) {
    return 1;
  }
  host.transport->add_peer(examples::responder_address(), "127.0.0.1",
                           peer_port);

  // Capture both for the pcap and for the replay attack: outbound wire
  // frames toward the responder are exactly what an on-path recorder would
  // hold.
  std::vector<util::Bytes> recorded;
  host.transport->set_capture([&](net::Ipv4Address, net::Ipv4Address to,
                                  const util::Bytes& frame, bool outbound) {
    if (host.pcap) host.pcap->record(frame);
    if (outbound && to == examples::responder_address() &&
        recorded.size() < replays) {
      recorded.push_back(frame);
    }
  });

  std::uint64_t echoes = 0;
  host.udp->bind(examples::kInitiatorPort,
                 [&](net::Ipv4Address, std::uint16_t, util::Bytes) {
                   ++echoes;
                 });

  for (std::uint64_t i = 0; i < count; ++i) {
    char msg[64];
    std::snprintf(msg, sizeof msg, "fbs over real udp #%llu",
                  static_cast<unsigned long long>(i));
    host.udp->send(examples::responder_address(), examples::kInitiatorPort,
                   examples::kResponderPort, util::to_bytes(msg));
    host.transport->poll(util::TimeUs{1000});
  }

  const util::TimeUs deadline =
      host.clock.now() + util::TimeUs{timeout_ms} * 1000;
  while (host.clock.now() < deadline && echoes < count) {
    host.transport->poll(util::TimeUs{20'000});
  }

  // The recorded-datagram attack: identical bytes, straight to the wire.
  for (const util::Bytes& frame : recorded) {
    host.transport->send(examples::initiator_address(),
                         examples::responder_address(), frame);
    host.transport->poll(util::TimeUs{1000});
  }
  if (host.pcap) host.pcap->flush();

  const auto& send_stats = host.fbs->endpoint().send_stats();
  std::printf("RESULT sent=%llu echoes=%llu replayed=%zu encrypted=%llu "
              "flow_keys=%llu tx_wire=%llu\n",
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(echoes), recorded.size(),
              static_cast<unsigned long long>(send_stats.encrypted),
              static_cast<unsigned long long>(send_stats.flow_keys_derived),
              static_cast<unsigned long long>(
                  host.transport->counters().tx_wire.load()));
  std::fflush(stdout);
  if (echoes < count || recorded.size() < replays) {
    std::fprintf(stderr, "initiator: %llu/%llu echoes, %zu/%llu replays\n",
                 static_cast<unsigned long long>(echoes),
                 static_cast<unsigned long long>(count), recorded.size(),
                 static_cast<unsigned long long>(replays));
    return 1;
  }
  return 0;
}
