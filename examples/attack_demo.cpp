// Attack demonstration: the Section 2.2 / Section 6 threat catalogue run
// against both the raw host-pair baseline and FBS, with an attacker sitting
// on the wire tap of the simulated segment.
//
//   1. eavesdropping        -- ciphertext only, on both schemes
//   2. tampering            -- silently accepted by host-pair (no MAC),
//                              detected and dropped by FBS
//   3. cut-and-paste        -- succeeds against host-pair keying,
//                              rejected by FBS (per-flow MAC)
//   4. replay               -- accepted inside the FBS freshness window
//                              (the paper's documented residual risk),
//                              rejected outside it, and rejected even inside
//                              with the strict-replay extension
#include <algorithm>
#include <cstdio>

#include "baselines/hostpair.hpp"
#include "cert/certificate.hpp"
#include "cert/directory.hpp"
#include "crypto/dh.hpp"
#include "fbs/engine.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace fbs;

namespace {

struct Principal {
  core::Principal id;
  std::unique_ptr<core::MasterKeyDaemon> mkd;
  std::unique_ptr<core::KeyManager> keys;
};

Principal enroll(const char* ip, cert::CertificateAuthority& ca,
                 cert::DirectoryService& directory, util::Clock& clock,
                 util::RandomSource& rng) {
  Principal p;
  p.id = core::Principal::from_ipv4(*net::Ipv4Address::parse(ip));
  const auto& group = crypto::test_group();
  const crypto::DhKeyPair dh = crypto::dh_generate(group, rng);
  directory.publish(ca.issue(p.id.address, group.name,
                             dh.public_value.to_bytes_be(group.element_size()),
                             0, clock.now() + util::minutes(1000000)));
  p.mkd = std::make_unique<core::MasterKeyDaemon>(
      p.id, dh.private_value, group, ca, directory, clock);
  p.keys = std::make_unique<core::KeyManager>(*p.mkd);
  return p;
}

core::Datagram make_datagram(const Principal& from, const Principal& to,
                             std::uint16_t sport, std::uint16_t dport,
                             const char* body) {
  core::Datagram d;
  d.source = from.id;
  d.destination = to.id;
  d.attrs.protocol = 17;
  d.attrs.source_address = from.id.ipv4().value;
  d.attrs.source_port = sport;
  d.attrs.destination_address = to.id.ipv4().value;
  d.attrs.destination_port = dport;
  d.body = util::to_bytes(body);
  return d;
}

const char* verdict(bool attack_succeeded) {
  return attack_succeeded ? "ATTACK SUCCEEDS" : "attack defeated";
}

}  // namespace

int main() {
  util::VirtualClock clock(util::minutes(1000));
  util::SplitMix64 rng(1337);
  cert::CertificateAuthority ca(512, rng);
  cert::DirectoryService directory;

  Principal alice = enroll("10.0.0.1", ca, directory, clock, rng);
  Principal bob = enroll("10.0.0.2", ca, directory, clock, rng);

  baselines::HostPairProtocol hp_alice(alice.id, *alice.keys, rng);
  baselines::HostPairProtocol hp_bob(bob.id, *bob.keys, rng);
  core::FbsConfig fbs_cfg;
  core::FbsEndpoint fbs_alice(alice.id, fbs_cfg, *alice.keys, clock, rng);
  core::FbsEndpoint fbs_bob(bob.id, fbs_cfg, *bob.keys, clock, rng);

  std::printf("== datagram security attack demo ==\n");
  std::printf("schemes: [host-pair] raw pair-key encryption (Section 2.2)\n");
  std::printf("         [FBS]       flow-based security, DES-CBC + keyed "
              "MD5\n\n");

  // ---- 1. Eavesdropping --------------------------------------------------
  std::printf("1. EAVESDROPPING on \"wire transfer $1000 to carol\"\n");
  const auto hp_wire =
      *hp_alice.protect(make_datagram(alice, bob, 40, 7, "wire transfer "
                                                         "$1000 to carol"));
  const auto fbs_wire = *fbs_alice.protect(
      make_datagram(alice, bob, 40, 7, "wire transfer $1000 to carol"), true);
  auto leaks = [](const util::Bytes& wire) {
    static const util::Bytes needle = util::to_bytes("$1000");
    return std::search(wire.begin(), wire.end(), needle.begin(),
                       needle.end()) != wire.end();
  };
  std::printf("   host-pair wire leaks plaintext: %s -> %s\n",
              leaks(hp_wire) ? "yes" : "no", verdict(leaks(hp_wire)));
  std::printf("   FBS wire leaks plaintext:       %s -> %s\n\n",
              leaks(fbs_wire) ? "yes" : "no", verdict(leaks(fbs_wire)));

  // ---- 2. Tampering -------------------------------------------------------
  std::printf("2. TAMPERING: attacker flips bits in transit\n");
  util::Bytes hp_bad = hp_wire;
  hp_bad[8 + 16] ^= 0xFF;  // inside the second ciphertext block
  const auto hp_result = hp_bob.unprotect(alice.id, hp_bad);
  std::printf("   host-pair: receiver %s garbled data (no MAC) -> %s\n",
              hp_result.has_value() ? "ACCEPTS" : "rejects",
              verdict(hp_result.has_value()));
  util::Bytes fbs_bad = fbs_wire;
  fbs_bad[fbs_bad.size() - 3] ^= 0xFF;
  auto fbs_result = fbs_bob.unprotect(alice.id, fbs_bad);
  const bool fbs_accepted =
      std::holds_alternative<core::ReceivedDatagram>(fbs_result);
  std::printf("   FBS:       receiver %s (%s) -> %s\n\n",
              fbs_accepted ? "ACCEPTS" : "rejects",
              fbs_accepted ? "?"
                           : core::to_string(
                                 std::get<core::ReceiveError>(fbs_result)),
              verdict(fbs_accepted));

  // ---- 3. Cut-and-paste ----------------------------------------------------
  std::printf("3. CUT-AND-PASTE: splice ciphertext between conversations\n");
  // Host-pair: swap the whole encrypted payload of datagram B into A's slot.
  const auto hp_a = *hp_alice.protect(
      make_datagram(alice, bob, 40, 7, "pay carol  $10"));
  const auto hp_b = *hp_alice.protect(
      make_datagram(alice, bob, 41, 9, "pay mallet $99"));
  const auto hp_spliced = hp_bob.unprotect(alice.id, hp_b);
  std::printf("   host-pair: spliced datagram decrypts to \"%s\" -> %s\n",
              hp_spliced ? util::to_string(*hp_spliced).c_str() : "(reject)",
              verdict(hp_spliced.has_value()));
  // FBS: same ciphertext splice across two flows.
  const auto fbs_a = *fbs_alice.protect(
      make_datagram(alice, bob, 40, 7, "pay carol  $10"), true);
  const auto fbs_b = *fbs_alice.protect(
      make_datagram(alice, bob, 41, 9, "pay mallet $99"), true);
  const auto pa = core::FbsHeader::parse(fbs_a);
  const auto pb = core::FbsHeader::parse(fbs_b);
  util::Bytes spliced = pa->header.serialize();
  spliced.insert(spliced.end(), pb->body.begin(), pb->body.end());
  auto fbs_spliced = fbs_bob.unprotect(alice.id, spliced);
  const bool splice_ok =
      std::holds_alternative<core::ReceivedDatagram>(fbs_spliced);
  std::printf("   FBS:       spliced datagram %s -> %s\n\n",
              splice_ok ? "accepted" : "rejected (flow keys differ)",
              verdict(splice_ok));

  // ---- 4. Replay -----------------------------------------------------------
  std::printf("4. REPLAY of a recorded FBS datagram\n");
  const auto recorded = *fbs_alice.protect(
      make_datagram(alice, bob, 40, 7, "launch the batch job"), true);
  (void)fbs_bob.unprotect(alice.id, recorded);  // original delivery
  auto replay1 = fbs_bob.unprotect(alice.id, recorded);
  const bool within =
      std::holds_alternative<core::ReceivedDatagram>(replay1);
  std::printf("   within freshness window: %s -> %s (paper Section 6.2: "
              "residual risk, left to higher layers)\n",
              within ? "ACCEPTED" : "rejected", verdict(within));
  clock.advance(util::minutes(10));
  auto replay2 = fbs_bob.unprotect(alice.id, recorded);
  const bool outside =
      std::holds_alternative<core::ReceivedDatagram>(replay2);
  std::printf("   after window slides:     %s -> %s\n",
              outside ? "ACCEPTED" : "rejected (stale)", verdict(outside));

  core::FbsConfig strict_cfg;
  strict_cfg.strict_replay = true;
  core::FbsEndpoint strict_bob(bob.id, strict_cfg, *bob.keys, clock, rng);
  const auto recorded2 = *fbs_alice.protect(
      make_datagram(alice, bob, 40, 7, "launch it again"), true);
  (void)strict_bob.unprotect(alice.id, recorded2);
  auto replay3 = strict_bob.unprotect(alice.id, recorded2);
  const bool strict_within =
      std::holds_alternative<core::ReceivedDatagram>(replay3);
  std::printf("   strict-replay extension, within window: %s -> %s\n",
              strict_within ? "ACCEPTED" : "rejected (soft-state MAC cache)",
              verdict(strict_within));

  std::printf("\nsummary: FBS defeats tampering and cut-and-paste that raw "
              "host-pair keying misses;\nreplay inside the window is the "
              "documented residual (closed by the strict extension).\n");
  return 0;
}
