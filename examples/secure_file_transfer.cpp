// FTP-style secure file transfer: the workload class the paper's intro and
// Section 7.1 policy target. Demonstrates
//   - a control conversation and a bulk data conversation as *separate
//     flows* (distinct five-tuples -> distinct sfls and keys),
//   - IP fragmentation living transparently below FBS,
//   - delivery over a lossy link with datagram semantics intact,
//   - mid-transfer rekeying via the FAM ("rekeying can be easily
//     accomplished ... by changing the sfl"),
//   - the per-flow amortization: thousands of datagrams, a handful of key
//     derivations.
#include <cstdio>
#include <map>

#include "cert/certificate.hpp"
#include "net/simnet.hpp"
#include "cert/directory.hpp"
#include "crypto/dh.hpp"
#include "fbs/ip_map.hpp"
#include "net/udp.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace fbs;

namespace {

struct Host {
  std::unique_ptr<core::MasterKeyDaemon> mkd;
  std::unique_ptr<core::KeyManager> keys;
  std::unique_ptr<net::IpStack> stack;
  std::unique_ptr<core::FbsIpMapping> fbs;
  std::unique_ptr<net::UdpService> udp;
};

Host make_host(const char* ip, cert::CertificateAuthority& ca,
               cert::DirectoryService& directory, net::SimNetwork& network,
               util::Clock& clock, util::RandomSource& rng) {
  Host host;
  const auto address = *net::Ipv4Address::parse(ip);
  const auto principal = core::Principal::from_ipv4(address);
  const auto& group = crypto::test_group();  // fast demo group
  const crypto::DhKeyPair dh = crypto::dh_generate(group, rng);
  directory.publish(ca.issue(principal.address, group.name,
                             dh.public_value.to_bytes_be(group.element_size()),
                             0, clock.now() + util::minutes(1000000)));
  host.mkd = std::make_unique<core::MasterKeyDaemon>(
      principal, dh.private_value, group, ca, directory, clock);
  host.keys = std::make_unique<core::KeyManager>(*host.mkd);
  host.stack = std::make_unique<net::IpStack>(network, clock, address);
  host.fbs = std::make_unique<core::FbsIpMapping>(
      *host.stack, core::IpMappingConfig{}, *host.keys, clock, rng);
  host.udp = std::make_unique<net::UdpService>(*host.stack);
  return host;
}

constexpr std::uint16_t kCtrlPort = 21;
constexpr std::uint16_t kDataPort = 20;

}  // namespace

int main() {
  util::VirtualClock clock(util::minutes(5000));
  util::SplitMix64 rng(42);
  cert::CertificateAuthority ca(512, rng);
  cert::DirectoryService directory;
  net::SimNetwork network(clock, 7);

  // A mildly unreliable LAN: 2% loss, some jitter.
  net::LinkParams link;
  link.loss = 0.02;
  link.jitter = util::TimeUs{2'000};
  network.set_default_link(link);

  Host server = make_host("10.1.1.1", ca, directory, network, clock, rng);
  Host client = make_host("10.1.0.11", ca, directory, network, clock, rng);

  std::printf("== secure file transfer (FTP-style, FBS underneath) ==\n\n");

  // --- Server application ---
  const std::size_t kFileSize = 512 * 1024;
  util::Bytes file = util::SplitMix64(99).next_bytes(kFileSize);
  constexpr std::size_t kChunk = 4096;  // fragments into 3 IP packets each

  server.udp->bind(kCtrlPort, [&](net::Ipv4Address from, std::uint16_t sport,
                                  util::Bytes payload) {
    const std::string cmd = util::to_string(payload);
    std::printf("server: ctrl <- \"%s\"\n", cmd.c_str());
    if (cmd.rfind("RETR", 0) == 0) {
      server.udp->send(from, kCtrlPort, sport,
                       util::to_bytes("150 opening secured data flow"));
      // Stream the file as numbered chunks on the data flow.
      for (std::size_t off = 0, seq = 0; off < file.size();
           off += kChunk, ++seq) {
        const std::size_t n = std::min(kChunk, file.size() - off);
        util::ByteWriter w(8 + n);
        w.u32(static_cast<std::uint32_t>(seq));
        w.u32(static_cast<std::uint32_t>(n));
        w.bytes(util::BytesView(file).subspan(off, n));
        server.udp->send(from, kDataPort, kDataPort, w.view());
      }
      server.udp->send(from, kCtrlPort, sport,
                       util::to_bytes("226 transfer complete"));
    }
  });

  // --- Client application ---
  std::map<std::uint32_t, util::Bytes> chunks;
  client.udp->bind(kDataPort, [&](net::Ipv4Address, std::uint16_t,
                                  util::Bytes payload) {
    util::ByteReader r(payload);
    const auto seq = r.u32();
    const auto n = r.u32();
    if (seq && n) chunks[*seq] = *r.bytes(*n);
  });
  client.udp->bind(4001, [&](net::Ipv4Address, std::uint16_t,
                             util::Bytes payload) {
    std::printf("client: ctrl -> \"%s\"\n", util::to_string(payload).c_str());
  });

  std::printf("client: requesting %zu KB file over the control flow\n\n",
              kFileSize / 1024);
  client.udp->send(server.stack->address(), 4001, kCtrlPort,
                   util::to_bytes("RETR bigfile.bin"));
  network.run();

  // Simple retransmission round for chunks lost on the 2%-lossy link: the
  // client asks again (datagram semantics: each chunk stands alone).
  const std::size_t total_chunks = (kFileSize + kChunk - 1) / kChunk;
  for (int round = 0; round < 20 && chunks.size() < total_chunks; ++round) {
    for (std::size_t seq = 0; seq < total_chunks; ++seq) {
      if (!chunks.contains(static_cast<std::uint32_t>(seq))) {
        util::ByteWriter w(12);
        w.bytes(util::to_bytes("AGAIN"));
        w.u32(static_cast<std::uint32_t>(seq));
        client.udp->send(server.stack->address(), 4001, kCtrlPort + 1,
                         w.view());
      }
    }
    // Server-side resend handler (bound lazily on first use).
    server.udp->bind(kCtrlPort + 1, [&](net::Ipv4Address from, std::uint16_t,
                                        util::Bytes payload) {
      util::ByteReader r(payload);
      (void)r.bytes(5);
      const auto seq = r.u32();
      if (!seq) return;
      const std::size_t off = static_cast<std::size_t>(*seq) * kChunk;
      if (off >= file.size()) return;
      const std::size_t n = std::min(kChunk, file.size() - off);
      util::ByteWriter w(8 + n);
      w.u32(*seq);
      w.u32(static_cast<std::uint32_t>(n));
      w.bytes(util::BytesView(file).subspan(off, n));
      server.udp->send(from, kDataPort, kDataPort, w.view());
    });
    network.run();
  }

  // Verify the received file.
  util::Bytes received;
  for (const auto& [seq, chunk] : chunks)
    received.insert(received.end(), chunk.begin(), chunk.end());
  std::printf("\nclient: received %zu/%zu chunks, file %s\n", chunks.size(),
              total_chunks, received == file ? "INTACT" : "CORRUPT");

  // Mid-session rekey of the data flow (e.g. a key-lifetime policy fired).
  core::FlowAttributes data_flow;
  data_flow.protocol = static_cast<std::uint8_t>(net::IpProto::kUdp);
  data_flow.source_address = server.stack->address().value;
  data_flow.source_port = kDataPort;
  data_flow.destination_address = client.stack->address().value;
  data_flow.destination_port = kDataPort;
  server.fbs->endpoint().rekey(data_flow);
  std::printf("server: data flow rekeyed via the FAM (fresh sfl + key)\n");

  const auto& s = server.fbs->endpoint().send_stats();
  std::printf("\nserver stats: %llu datagrams protected with only %llu flow "
              "key derivations (per-flow amortization)\n",
              static_cast<unsigned long long>(s.datagrams),
              static_cast<unsigned long long>(s.flow_keys_derived));
  std::printf("network: %llu frames sent, %llu lost on the wire\n",
              static_cast<unsigned long long>(network.counters().sent),
              static_cast<unsigned long long>(network.counters().lost));
  std::printf("client IP stack: %llu fragments reassembled into datagrams\n",
              static_cast<unsigned long long>(
                  client.stack->counters().packets_in));
  return received == file ? 0 : 1;
}
