// Responder half of the cross-process FBS loopback pair.
//
// Binds a real UDP socket (ephemeral by default), prints "READY <port>" on
// stdout for the harness, then echoes every FBS-protected datagram that
// verifies back to its sender. Exits 0 once it has accepted `expect`
// datagrams AND rejected `expect_replays` strict-replay injections; exits 1
// on the deadline. All traffic on the wire is MAC-verified, DES-CBC
// encrypted FBS -- the process never sees a cleartext frame.
//
//   udp_loopback_responder [--port P] [--expect N] [--expect-replays M]
//                          [--pcap FILE] [--timeout-ms T]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "examples/udp_loopback_common.hpp"

using namespace fbs;

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::uint64_t expect = 8;
  std::uint64_t expect_replays = 0;
  std::string pcap_path;
  long timeout_ms = 30'000;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--port") port = static_cast<std::uint16_t>(std::atoi(argv[i + 1]));
    else if (flag == "--expect") expect = std::strtoull(argv[i + 1], nullptr, 10);
    else if (flag == "--expect-replays") expect_replays = std::strtoull(argv[i + 1], nullptr, 10);
    else if (flag == "--pcap") pcap_path = argv[i + 1];
    else if (flag == "--timeout-ms") timeout_ms = std::atol(argv[i + 1]);
    else { std::fprintf(stderr, "unknown flag %s\n", flag.c_str()); return 2; }
  }

  examples::LoopbackHost host;
  if (!examples::make_loopback_host(host, /*initiator=*/false, port,
                                    pcap_path)) {
    return 1;
  }
  if (host.pcap) host.transport->set_capture(host.pcap->capture_fn());

  std::uint64_t echoed = 0;
  host.udp->bind(examples::kResponderPort,
                 [&](net::Ipv4Address from, std::uint16_t from_port,
                     util::Bytes payload) {
                   ++echoed;
                   host.udp->send(from, examples::kResponderPort, from_port,
                                  payload);
                 });

  std::printf("READY %u\n", host.transport->local_port());
  std::fflush(stdout);

  const auto& c = host.fbs->counters();
  const auto replays = [&] {
    return c.in_rejected[static_cast<std::size_t>(
                             core::ReceiveError::kReplay)]
        .load();
  };
  const util::TimeUs deadline =
      host.clock.now() + util::TimeUs{timeout_ms} * 1000;
  while (host.clock.now() < deadline &&
         (c.in_accepted < expect || replays() < expect_replays)) {
    host.transport->poll(util::TimeUs{20'000});
  }
  // Give the last echo a moment to leave the socket, then report.
  host.transport->poll(util::TimeUs{0});
  if (host.pcap) host.pcap->flush();

  const bool ok = c.in_accepted >= expect && replays() >= expect_replays;
  std::printf("RESULT accepted=%llu echoed=%llu replay_rejected=%llu "
              "bad_mac=%llu tx_wire=%llu received=%llu\n",
              static_cast<unsigned long long>(c.in_accepted.load()),
              static_cast<unsigned long long>(echoed),
              static_cast<unsigned long long>(replays()),
              static_cast<unsigned long long>(
                  c.in_rejected[static_cast<std::size_t>(
                                    core::ReceiveError::kBadMac)]
                      .load()),
              static_cast<unsigned long long>(
                  host.transport->counters().tx_wire.load()),
              static_cast<unsigned long long>(
                  host.transport->counters().received.load()));
  std::fflush(stdout);
  if (!ok) {
    std::fprintf(stderr, "responder: expected %llu accepted / %llu replay "
                         "rejects before the deadline\n",
                 static_cast<unsigned long long>(expect),
                 static_cast<unsigned long long>(expect_replays));
    return 1;
  }
  return 0;
}
