// An interactive TELNET-style session over TCP over FBS -- the workload the
// Section 7.1 policy discussion centres on: "a long TELNET session with
// large quiet periods" legitimately splits into several flows, and "the
// partitioning of a long duration conversation into multiple flows is
// better from a security perspective".
//
// A scripted user types command bursts separated by quiet periods longer
// than THRESHOLD. Watch the sfl change across the quiet periods while the
// TCP connection -- and the user's session -- continues undisturbed.
#include <cstdio>

#include "crypto/dh.hpp"
#include "net/simnet.hpp"
#include "fbs/ip_map.hpp"
#include "net/tcp.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace fbs;

namespace {

struct Host {
  std::unique_ptr<core::MasterKeyDaemon> mkd;
  std::unique_ptr<core::KeyManager> keys;
  std::unique_ptr<net::IpStack> stack;
  std::unique_ptr<core::FbsIpMapping> fbs;
  std::unique_ptr<net::TcpService> tcp;
};

Host make_host(const char* ip, cert::CertificateAuthority& ca,
               cert::DirectoryService& directory, net::SimNetwork& network,
               util::Clock& clock, util::RandomSource& rng) {
  Host host;
  const auto address = *net::Ipv4Address::parse(ip);
  const auto principal = core::Principal::from_ipv4(address);
  const auto& group = crypto::test_group();
  const crypto::DhKeyPair dh = crypto::dh_generate(group, rng);
  directory.publish(ca.issue(principal.address, group.name,
                             dh.public_value.to_bytes_be(group.element_size()),
                             0, clock.now() + util::minutes(1000000)));
  host.mkd = std::make_unique<core::MasterKeyDaemon>(
      principal, dh.private_value, group, ca, directory, clock);
  host.keys = std::make_unique<core::KeyManager>(*host.mkd);
  host.stack = std::make_unique<net::IpStack>(network, clock, address);
  host.fbs = std::make_unique<core::FbsIpMapping>(
      *host.stack, core::IpMappingConfig{}, *host.keys, clock, rng);
  host.tcp = std::make_unique<net::TcpService>(*host.stack, network, rng);
  return host;
}

}  // namespace

int main() {
  util::VirtualClock clock(util::minutes(50000));
  util::SplitMix64 rng(4242);
  cert::CertificateAuthority ca(512, rng);
  cert::DirectoryService directory;
  net::SimNetwork network(clock, 9);

  Host client = make_host("10.1.0.11", ca, directory, network, clock, rng);
  Host server = make_host("10.1.1.1", ca, directory, network, clock, rng);

  std::printf("== secure telnet: one TCP connection, several FBS flows ==\n");
  std::printf("(flow THRESHOLD = 600s; quiet periods below are 15 min)\n\n");

  // Server: a fake shell that answers every line.
  server.tcp->listen(23, [&](std::shared_ptr<net::TcpConnection> conn) {
    conn->on_receive([conn](util::BytesView line) {
      util::Bytes reply = util::to_bytes("$ ran: ");
      reply.insert(reply.end(), line.begin(), line.end());
      conn->send(reply);
    });
  });

  auto session = client.tcp->connect(server.stack->address(), 23);
  session->on_receive([&](util::BytesView reply) {
    std::printf("  [t=%6.1f min] server: %s\n",
                static_cast<double>(clock.now()) / util::kMicrosPerMinute -
                    50000,
                util::to_string(reply).c_str());
  });
  network.run();

  // sfl spy: watch the flow label on the wire for client->server traffic.
  std::uint64_t last_sfl = 0;
  int flows_seen = 0;
  network.set_tap([&](net::Ipv4Address from, net::Ipv4Address to,
                      util::Bytes& frame) {
    if (from == client.stack->address() && to == server.stack->address()) {
      if (const auto ip = net::Ipv4Header::parse(frame)) {
        if (const auto fbs_hdr = core::FbsHeader::parse(ip->payload)) {
          if (fbs_hdr->header.sfl != last_sfl) {
            last_sfl = fbs_hdr->header.sfl;
            ++flows_seen;
            std::printf("  >> client->server flow #%d (sfl=%016llx)\n",
                        flows_seen,
                        static_cast<unsigned long long>(last_sfl));
          }
        }
      }
    }
    return net::SimNetwork::TapVerdict::kPass;
  });

  const char* bursts[][2] = {
      {"ls -l\n", "cat notes.txt\n"},
      {"make test\n", "git diff\n"},   // after a long coffee break
      {"logout prep\n", "exit\n"},     // after a meeting
  };
  for (int burst = 0; burst < 3; ++burst) {
    std::printf("\nuser types (burst %d):\n", burst + 1);
    for (const char* cmd : bursts[burst]) {
      session->send(util::to_bytes(cmd));
      network.run();
      clock.advance(util::seconds(2));
    }
    if (burst < 2) {
      std::printf("  ... quiet period (15 min) ...\n");
      clock.advance(util::minutes(15));
    }
  }
  session->close();
  network.run();

  std::printf("\none TCP connection, %d FBS flows (one per activity burst)."
              "\nEach quiet period retired the old key -- recorded traffic "
              "from burst 1\ncannot be replayed into burst 2's flow, and a "
              "key compromised during\nburst 3 exposes nothing typed "
              "earlier.\n",
              flows_seen);
  const auto& stats = client.fbs->endpoint().send_stats();
  std::printf("\nclient: %llu datagrams, %llu flow keys derived\n",
              static_cast<unsigned long long>(stats.datagrams),
              static_cast<unsigned long long>(stats.flow_keys_derived));
  return flows_seen >= 3 ? 0 : 1;
}
