# Empty compiler generated dependencies file for fbs_cert.
# This may be replaced when dependencies are built.
