
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cert/certificate.cpp" "src/cert/CMakeFiles/fbs_cert.dir/certificate.cpp.o" "gcc" "src/cert/CMakeFiles/fbs_cert.dir/certificate.cpp.o.d"
  "/root/repo/src/cert/directory.cpp" "src/cert/CMakeFiles/fbs_cert.dir/directory.cpp.o" "gcc" "src/cert/CMakeFiles/fbs_cert.dir/directory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/fbs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/fbs_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
