file(REMOVE_RECURSE
  "CMakeFiles/fbs_cert.dir/certificate.cpp.o"
  "CMakeFiles/fbs_cert.dir/certificate.cpp.o.d"
  "CMakeFiles/fbs_cert.dir/directory.cpp.o"
  "CMakeFiles/fbs_cert.dir/directory.cpp.o.d"
  "libfbs_cert.a"
  "libfbs_cert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_cert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
