file(REMOVE_RECURSE
  "libfbs_cert.a"
)
