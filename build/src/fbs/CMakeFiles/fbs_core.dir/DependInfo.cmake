
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fbs/app_map.cpp" "src/fbs/CMakeFiles/fbs_core.dir/app_map.cpp.o" "gcc" "src/fbs/CMakeFiles/fbs_core.dir/app_map.cpp.o.d"
  "/root/repo/src/fbs/caches.cpp" "src/fbs/CMakeFiles/fbs_core.dir/caches.cpp.o" "gcc" "src/fbs/CMakeFiles/fbs_core.dir/caches.cpp.o.d"
  "/root/repo/src/fbs/engine.cpp" "src/fbs/CMakeFiles/fbs_core.dir/engine.cpp.o" "gcc" "src/fbs/CMakeFiles/fbs_core.dir/engine.cpp.o.d"
  "/root/repo/src/fbs/fam.cpp" "src/fbs/CMakeFiles/fbs_core.dir/fam.cpp.o" "gcc" "src/fbs/CMakeFiles/fbs_core.dir/fam.cpp.o.d"
  "/root/repo/src/fbs/header.cpp" "src/fbs/CMakeFiles/fbs_core.dir/header.cpp.o" "gcc" "src/fbs/CMakeFiles/fbs_core.dir/header.cpp.o.d"
  "/root/repo/src/fbs/ip_map.cpp" "src/fbs/CMakeFiles/fbs_core.dir/ip_map.cpp.o" "gcc" "src/fbs/CMakeFiles/fbs_core.dir/ip_map.cpp.o.d"
  "/root/repo/src/fbs/keying.cpp" "src/fbs/CMakeFiles/fbs_core.dir/keying.cpp.o" "gcc" "src/fbs/CMakeFiles/fbs_core.dir/keying.cpp.o.d"
  "/root/repo/src/fbs/principal.cpp" "src/fbs/CMakeFiles/fbs_core.dir/principal.cpp.o" "gcc" "src/fbs/CMakeFiles/fbs_core.dir/principal.cpp.o.d"
  "/root/repo/src/fbs/replay.cpp" "src/fbs/CMakeFiles/fbs_core.dir/replay.cpp.o" "gcc" "src/fbs/CMakeFiles/fbs_core.dir/replay.cpp.o.d"
  "/root/repo/src/fbs/tunnel.cpp" "src/fbs/CMakeFiles/fbs_core.dir/tunnel.cpp.o" "gcc" "src/fbs/CMakeFiles/fbs_core.dir/tunnel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/fbs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cert/CMakeFiles/fbs_cert.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/fbs_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
