# Empty dependencies file for fbs_core.
# This may be replaced when dependencies are built.
