file(REMOVE_RECURSE
  "CMakeFiles/fbs_core.dir/app_map.cpp.o"
  "CMakeFiles/fbs_core.dir/app_map.cpp.o.d"
  "CMakeFiles/fbs_core.dir/caches.cpp.o"
  "CMakeFiles/fbs_core.dir/caches.cpp.o.d"
  "CMakeFiles/fbs_core.dir/engine.cpp.o"
  "CMakeFiles/fbs_core.dir/engine.cpp.o.d"
  "CMakeFiles/fbs_core.dir/fam.cpp.o"
  "CMakeFiles/fbs_core.dir/fam.cpp.o.d"
  "CMakeFiles/fbs_core.dir/header.cpp.o"
  "CMakeFiles/fbs_core.dir/header.cpp.o.d"
  "CMakeFiles/fbs_core.dir/ip_map.cpp.o"
  "CMakeFiles/fbs_core.dir/ip_map.cpp.o.d"
  "CMakeFiles/fbs_core.dir/keying.cpp.o"
  "CMakeFiles/fbs_core.dir/keying.cpp.o.d"
  "CMakeFiles/fbs_core.dir/principal.cpp.o"
  "CMakeFiles/fbs_core.dir/principal.cpp.o.d"
  "CMakeFiles/fbs_core.dir/replay.cpp.o"
  "CMakeFiles/fbs_core.dir/replay.cpp.o.d"
  "CMakeFiles/fbs_core.dir/tunnel.cpp.o"
  "CMakeFiles/fbs_core.dir/tunnel.cpp.o.d"
  "libfbs_core.a"
  "libfbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
