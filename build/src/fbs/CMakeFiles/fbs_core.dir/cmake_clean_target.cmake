file(REMOVE_RECURSE
  "libfbs_core.a"
)
