# Empty dependencies file for fbs_crypto.
# This may be replaced when dependencies are built.
