file(REMOVE_RECURSE
  "CMakeFiles/fbs_crypto.dir/algorithms.cpp.o"
  "CMakeFiles/fbs_crypto.dir/algorithms.cpp.o.d"
  "CMakeFiles/fbs_crypto.dir/bbs.cpp.o"
  "CMakeFiles/fbs_crypto.dir/bbs.cpp.o.d"
  "CMakeFiles/fbs_crypto.dir/block_modes.cpp.o"
  "CMakeFiles/fbs_crypto.dir/block_modes.cpp.o.d"
  "CMakeFiles/fbs_crypto.dir/des.cpp.o"
  "CMakeFiles/fbs_crypto.dir/des.cpp.o.d"
  "CMakeFiles/fbs_crypto.dir/dh.cpp.o"
  "CMakeFiles/fbs_crypto.dir/dh.cpp.o.d"
  "CMakeFiles/fbs_crypto.dir/fused.cpp.o"
  "CMakeFiles/fbs_crypto.dir/fused.cpp.o.d"
  "CMakeFiles/fbs_crypto.dir/mac.cpp.o"
  "CMakeFiles/fbs_crypto.dir/mac.cpp.o.d"
  "CMakeFiles/fbs_crypto.dir/md5.cpp.o"
  "CMakeFiles/fbs_crypto.dir/md5.cpp.o.d"
  "CMakeFiles/fbs_crypto.dir/rsa.cpp.o"
  "CMakeFiles/fbs_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/fbs_crypto.dir/sha1.cpp.o"
  "CMakeFiles/fbs_crypto.dir/sha1.cpp.o.d"
  "libfbs_crypto.a"
  "libfbs_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
