
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/algorithms.cpp" "src/crypto/CMakeFiles/fbs_crypto.dir/algorithms.cpp.o" "gcc" "src/crypto/CMakeFiles/fbs_crypto.dir/algorithms.cpp.o.d"
  "/root/repo/src/crypto/bbs.cpp" "src/crypto/CMakeFiles/fbs_crypto.dir/bbs.cpp.o" "gcc" "src/crypto/CMakeFiles/fbs_crypto.dir/bbs.cpp.o.d"
  "/root/repo/src/crypto/block_modes.cpp" "src/crypto/CMakeFiles/fbs_crypto.dir/block_modes.cpp.o" "gcc" "src/crypto/CMakeFiles/fbs_crypto.dir/block_modes.cpp.o.d"
  "/root/repo/src/crypto/des.cpp" "src/crypto/CMakeFiles/fbs_crypto.dir/des.cpp.o" "gcc" "src/crypto/CMakeFiles/fbs_crypto.dir/des.cpp.o.d"
  "/root/repo/src/crypto/dh.cpp" "src/crypto/CMakeFiles/fbs_crypto.dir/dh.cpp.o" "gcc" "src/crypto/CMakeFiles/fbs_crypto.dir/dh.cpp.o.d"
  "/root/repo/src/crypto/fused.cpp" "src/crypto/CMakeFiles/fbs_crypto.dir/fused.cpp.o" "gcc" "src/crypto/CMakeFiles/fbs_crypto.dir/fused.cpp.o.d"
  "/root/repo/src/crypto/mac.cpp" "src/crypto/CMakeFiles/fbs_crypto.dir/mac.cpp.o" "gcc" "src/crypto/CMakeFiles/fbs_crypto.dir/mac.cpp.o.d"
  "/root/repo/src/crypto/md5.cpp" "src/crypto/CMakeFiles/fbs_crypto.dir/md5.cpp.o" "gcc" "src/crypto/CMakeFiles/fbs_crypto.dir/md5.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/fbs_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/fbs_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/crypto/CMakeFiles/fbs_crypto.dir/sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/fbs_crypto.dir/sha1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fbs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/fbs_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
