file(REMOVE_RECURSE
  "libfbs_crypto.a"
)
