file(REMOVE_RECURSE
  "CMakeFiles/fbs_baselines.dir/hostpair.cpp.o"
  "CMakeFiles/fbs_baselines.dir/hostpair.cpp.o.d"
  "CMakeFiles/fbs_baselines.dir/kdc.cpp.o"
  "CMakeFiles/fbs_baselines.dir/kdc.cpp.o.d"
  "CMakeFiles/fbs_baselines.dir/perdatagram.cpp.o"
  "CMakeFiles/fbs_baselines.dir/perdatagram.cpp.o.d"
  "CMakeFiles/fbs_baselines.dir/skiplike.cpp.o"
  "CMakeFiles/fbs_baselines.dir/skiplike.cpp.o.d"
  "libfbs_baselines.a"
  "libfbs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
