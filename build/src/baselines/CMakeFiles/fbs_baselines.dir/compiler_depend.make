# Empty compiler generated dependencies file for fbs_baselines.
# This may be replaced when dependencies are built.
