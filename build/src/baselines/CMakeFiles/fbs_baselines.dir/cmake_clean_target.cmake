file(REMOVE_RECURSE
  "libfbs_baselines.a"
)
