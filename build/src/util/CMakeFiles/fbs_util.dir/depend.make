# Empty dependencies file for fbs_util.
# This may be replaced when dependencies are built.
