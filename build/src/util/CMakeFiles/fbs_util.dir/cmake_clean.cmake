file(REMOVE_RECURSE
  "CMakeFiles/fbs_util.dir/bytes.cpp.o"
  "CMakeFiles/fbs_util.dir/bytes.cpp.o.d"
  "CMakeFiles/fbs_util.dir/clock.cpp.o"
  "CMakeFiles/fbs_util.dir/clock.cpp.o.d"
  "CMakeFiles/fbs_util.dir/crc32.cpp.o"
  "CMakeFiles/fbs_util.dir/crc32.cpp.o.d"
  "CMakeFiles/fbs_util.dir/histogram.cpp.o"
  "CMakeFiles/fbs_util.dir/histogram.cpp.o.d"
  "CMakeFiles/fbs_util.dir/rng.cpp.o"
  "CMakeFiles/fbs_util.dir/rng.cpp.o.d"
  "libfbs_util.a"
  "libfbs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
