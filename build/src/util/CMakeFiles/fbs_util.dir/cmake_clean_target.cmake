file(REMOVE_RECURSE
  "libfbs_util.a"
)
