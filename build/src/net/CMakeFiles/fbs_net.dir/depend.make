# Empty dependencies file for fbs_net.
# This may be replaced when dependencies are built.
