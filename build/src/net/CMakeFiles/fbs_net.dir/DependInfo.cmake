
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cpp" "src/net/CMakeFiles/fbs_net.dir/checksum.cpp.o" "gcc" "src/net/CMakeFiles/fbs_net.dir/checksum.cpp.o.d"
  "/root/repo/src/net/fragment.cpp" "src/net/CMakeFiles/fbs_net.dir/fragment.cpp.o" "gcc" "src/net/CMakeFiles/fbs_net.dir/fragment.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/net/CMakeFiles/fbs_net.dir/headers.cpp.o" "gcc" "src/net/CMakeFiles/fbs_net.dir/headers.cpp.o.d"
  "/root/repo/src/net/icmp.cpp" "src/net/CMakeFiles/fbs_net.dir/icmp.cpp.o" "gcc" "src/net/CMakeFiles/fbs_net.dir/icmp.cpp.o.d"
  "/root/repo/src/net/ip.cpp" "src/net/CMakeFiles/fbs_net.dir/ip.cpp.o" "gcc" "src/net/CMakeFiles/fbs_net.dir/ip.cpp.o.d"
  "/root/repo/src/net/ports.cpp" "src/net/CMakeFiles/fbs_net.dir/ports.cpp.o" "gcc" "src/net/CMakeFiles/fbs_net.dir/ports.cpp.o.d"
  "/root/repo/src/net/simnet.cpp" "src/net/CMakeFiles/fbs_net.dir/simnet.cpp.o" "gcc" "src/net/CMakeFiles/fbs_net.dir/simnet.cpp.o.d"
  "/root/repo/src/net/stack.cpp" "src/net/CMakeFiles/fbs_net.dir/stack.cpp.o" "gcc" "src/net/CMakeFiles/fbs_net.dir/stack.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/fbs_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/fbs_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/net/CMakeFiles/fbs_net.dir/udp.cpp.o" "gcc" "src/net/CMakeFiles/fbs_net.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
