file(REMOVE_RECURSE
  "libfbs_net.a"
)
