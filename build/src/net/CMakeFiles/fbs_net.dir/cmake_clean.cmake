file(REMOVE_RECURSE
  "CMakeFiles/fbs_net.dir/checksum.cpp.o"
  "CMakeFiles/fbs_net.dir/checksum.cpp.o.d"
  "CMakeFiles/fbs_net.dir/fragment.cpp.o"
  "CMakeFiles/fbs_net.dir/fragment.cpp.o.d"
  "CMakeFiles/fbs_net.dir/headers.cpp.o"
  "CMakeFiles/fbs_net.dir/headers.cpp.o.d"
  "CMakeFiles/fbs_net.dir/icmp.cpp.o"
  "CMakeFiles/fbs_net.dir/icmp.cpp.o.d"
  "CMakeFiles/fbs_net.dir/ip.cpp.o"
  "CMakeFiles/fbs_net.dir/ip.cpp.o.d"
  "CMakeFiles/fbs_net.dir/ports.cpp.o"
  "CMakeFiles/fbs_net.dir/ports.cpp.o.d"
  "CMakeFiles/fbs_net.dir/simnet.cpp.o"
  "CMakeFiles/fbs_net.dir/simnet.cpp.o.d"
  "CMakeFiles/fbs_net.dir/stack.cpp.o"
  "CMakeFiles/fbs_net.dir/stack.cpp.o.d"
  "CMakeFiles/fbs_net.dir/tcp.cpp.o"
  "CMakeFiles/fbs_net.dir/tcp.cpp.o.d"
  "CMakeFiles/fbs_net.dir/udp.cpp.o"
  "CMakeFiles/fbs_net.dir/udp.cpp.o.d"
  "libfbs_net.a"
  "libfbs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
