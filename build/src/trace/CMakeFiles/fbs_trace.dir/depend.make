# Empty dependencies file for fbs_trace.
# This may be replaced when dependencies are built.
