file(REMOVE_RECURSE
  "libfbs_trace.a"
)
