file(REMOVE_RECURSE
  "CMakeFiles/fbs_trace.dir/flowsim.cpp.o"
  "CMakeFiles/fbs_trace.dir/flowsim.cpp.o.d"
  "CMakeFiles/fbs_trace.dir/record.cpp.o"
  "CMakeFiles/fbs_trace.dir/record.cpp.o.d"
  "CMakeFiles/fbs_trace.dir/synth.cpp.o"
  "CMakeFiles/fbs_trace.dir/synth.cpp.o.d"
  "libfbs_trace.a"
  "libfbs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
