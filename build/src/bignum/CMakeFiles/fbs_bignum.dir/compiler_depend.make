# Empty compiler generated dependencies file for fbs_bignum.
# This may be replaced when dependencies are built.
