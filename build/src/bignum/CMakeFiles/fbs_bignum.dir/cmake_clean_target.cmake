file(REMOVE_RECURSE
  "libfbs_bignum.a"
)
