file(REMOVE_RECURSE
  "CMakeFiles/fbs_bignum.dir/prime.cpp.o"
  "CMakeFiles/fbs_bignum.dir/prime.cpp.o.d"
  "CMakeFiles/fbs_bignum.dir/uint.cpp.o"
  "CMakeFiles/fbs_bignum.dir/uint.cpp.o.d"
  "libfbs_bignum.a"
  "libfbs_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
