
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_checksum.cpp" "tests/CMakeFiles/test_net.dir/net/test_checksum.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_checksum.cpp.o.d"
  "/root/repo/tests/net/test_fragment.cpp" "tests/CMakeFiles/test_net.dir/net/test_fragment.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_fragment.cpp.o.d"
  "/root/repo/tests/net/test_headers.cpp" "tests/CMakeFiles/test_net.dir/net/test_headers.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_headers.cpp.o.d"
  "/root/repo/tests/net/test_icmp.cpp" "tests/CMakeFiles/test_net.dir/net/test_icmp.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_icmp.cpp.o.d"
  "/root/repo/tests/net/test_ip.cpp" "tests/CMakeFiles/test_net.dir/net/test_ip.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_ip.cpp.o.d"
  "/root/repo/tests/net/test_ports.cpp" "tests/CMakeFiles/test_net.dir/net/test_ports.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_ports.cpp.o.d"
  "/root/repo/tests/net/test_routing.cpp" "tests/CMakeFiles/test_net.dir/net/test_routing.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_routing.cpp.o.d"
  "/root/repo/tests/net/test_simnet.cpp" "tests/CMakeFiles/test_net.dir/net/test_simnet.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_simnet.cpp.o.d"
  "/root/repo/tests/net/test_stack.cpp" "tests/CMakeFiles/test_net.dir/net/test_stack.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_stack.cpp.o.d"
  "/root/repo/tests/net/test_tcp.cpp" "tests/CMakeFiles/test_net.dir/net/test_tcp.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_tcp.cpp.o.d"
  "/root/repo/tests/net/test_udp.cpp" "tests/CMakeFiles/test_net.dir/net/test_udp.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/fbs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fbs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/fbs/CMakeFiles/fbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cert/CMakeFiles/fbs_cert.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fbs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/fbs_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
