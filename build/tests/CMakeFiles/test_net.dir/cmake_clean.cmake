file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_checksum.cpp.o"
  "CMakeFiles/test_net.dir/net/test_checksum.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_fragment.cpp.o"
  "CMakeFiles/test_net.dir/net/test_fragment.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_headers.cpp.o"
  "CMakeFiles/test_net.dir/net/test_headers.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_icmp.cpp.o"
  "CMakeFiles/test_net.dir/net/test_icmp.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_ip.cpp.o"
  "CMakeFiles/test_net.dir/net/test_ip.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_ports.cpp.o"
  "CMakeFiles/test_net.dir/net/test_ports.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_routing.cpp.o"
  "CMakeFiles/test_net.dir/net/test_routing.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_simnet.cpp.o"
  "CMakeFiles/test_net.dir/net/test_simnet.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_stack.cpp.o"
  "CMakeFiles/test_net.dir/net/test_stack.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_tcp.cpp.o"
  "CMakeFiles/test_net.dir/net/test_tcp.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_udp.cpp.o"
  "CMakeFiles/test_net.dir/net/test_udp.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
