
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/test_algorithms.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_algorithms.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_algorithms.cpp.o.d"
  "/root/repo/tests/crypto/test_bbs.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_bbs.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_bbs.cpp.o.d"
  "/root/repo/tests/crypto/test_block_modes.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_block_modes.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_block_modes.cpp.o.d"
  "/root/repo/tests/crypto/test_des.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_des.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_des.cpp.o.d"
  "/root/repo/tests/crypto/test_dh.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_dh.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_dh.cpp.o.d"
  "/root/repo/tests/crypto/test_fused.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_fused.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_fused.cpp.o.d"
  "/root/repo/tests/crypto/test_mac.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_mac.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_mac.cpp.o.d"
  "/root/repo/tests/crypto/test_md5.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_md5.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_md5.cpp.o.d"
  "/root/repo/tests/crypto/test_rsa.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_rsa.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_rsa.cpp.o.d"
  "/root/repo/tests/crypto/test_sha1.cpp" "tests/CMakeFiles/test_crypto.dir/crypto/test_sha1.cpp.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/test_sha1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/fbs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fbs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/fbs/CMakeFiles/fbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cert/CMakeFiles/fbs_cert.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fbs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/fbs_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
