file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/crypto/test_algorithms.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_algorithms.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_bbs.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_bbs.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_block_modes.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_block_modes.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_des.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_des.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_dh.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_dh.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_fused.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_fused.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_mac.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_mac.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_md5.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_md5.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_rsa.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_rsa.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_sha1.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/test_sha1.cpp.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
