# Empty dependencies file for test_fbs.
# This may be replaced when dependencies are built.
