
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fbs/test_app_map.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_app_map.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_app_map.cpp.o.d"
  "/root/repo/tests/fbs/test_attacks.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_attacks.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_attacks.cpp.o.d"
  "/root/repo/tests/fbs/test_caches.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_caches.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_caches.cpp.o.d"
  "/root/repo/tests/fbs/test_engine.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_engine.cpp.o.d"
  "/root/repo/tests/fbs/test_engine_properties.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_engine_properties.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_engine_properties.cpp.o.d"
  "/root/repo/tests/fbs/test_error_paths.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_error_paths.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_error_paths.cpp.o.d"
  "/root/repo/tests/fbs/test_extensions.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_extensions.cpp.o.d"
  "/root/repo/tests/fbs/test_fam.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_fam.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_fam.cpp.o.d"
  "/root/repo/tests/fbs/test_fuzz.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_fuzz.cpp.o.d"
  "/root/repo/tests/fbs/test_header.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_header.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_header.cpp.o.d"
  "/root/repo/tests/fbs/test_hierarchy.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_hierarchy.cpp.o.d"
  "/root/repo/tests/fbs/test_interop.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_interop.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_interop.cpp.o.d"
  "/root/repo/tests/fbs/test_ip_map.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_ip_map.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_ip_map.cpp.o.d"
  "/root/repo/tests/fbs/test_keying.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_keying.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_keying.cpp.o.d"
  "/root/repo/tests/fbs/test_replay.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_replay.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_replay.cpp.o.d"
  "/root/repo/tests/fbs/test_tunnel.cpp" "tests/CMakeFiles/test_fbs.dir/fbs/test_tunnel.cpp.o" "gcc" "tests/CMakeFiles/test_fbs.dir/fbs/test_tunnel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/fbs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fbs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/fbs/CMakeFiles/fbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cert/CMakeFiles/fbs_cert.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fbs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/fbs_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
