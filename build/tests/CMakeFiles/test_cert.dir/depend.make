# Empty dependencies file for test_cert.
# This may be replaced when dependencies are built.
