file(REMOVE_RECURSE
  "CMakeFiles/test_cert.dir/cert/test_certificate.cpp.o"
  "CMakeFiles/test_cert.dir/cert/test_certificate.cpp.o.d"
  "CMakeFiles/test_cert.dir/cert/test_chain.cpp.o"
  "CMakeFiles/test_cert.dir/cert/test_chain.cpp.o.d"
  "CMakeFiles/test_cert.dir/cert/test_directory.cpp.o"
  "CMakeFiles/test_cert.dir/cert/test_directory.cpp.o.d"
  "test_cert"
  "test_cert.pdb"
  "test_cert[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
