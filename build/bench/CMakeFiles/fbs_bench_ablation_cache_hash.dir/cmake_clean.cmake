file(REMOVE_RECURSE
  "CMakeFiles/fbs_bench_ablation_cache_hash.dir/bench_ablation_cache_hash.cpp.o"
  "CMakeFiles/fbs_bench_ablation_cache_hash.dir/bench_ablation_cache_hash.cpp.o.d"
  "fbs_bench_ablation_cache_hash"
  "fbs_bench_ablation_cache_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_bench_ablation_cache_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
