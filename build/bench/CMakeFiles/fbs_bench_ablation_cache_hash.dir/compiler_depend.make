# Empty compiler generated dependencies file for fbs_bench_ablation_cache_hash.
# This may be replaced when dependencies are built.
