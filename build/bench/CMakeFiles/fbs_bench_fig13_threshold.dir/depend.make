# Empty dependencies file for fbs_bench_fig13_threshold.
# This may be replaced when dependencies are built.
