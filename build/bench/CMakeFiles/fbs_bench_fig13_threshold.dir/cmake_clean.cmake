file(REMOVE_RECURSE
  "CMakeFiles/fbs_bench_fig13_threshold.dir/bench_fig13_threshold.cpp.o"
  "CMakeFiles/fbs_bench_fig13_threshold.dir/bench_fig13_threshold.cpp.o.d"
  "fbs_bench_fig13_threshold"
  "fbs_bench_fig13_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_bench_fig13_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
