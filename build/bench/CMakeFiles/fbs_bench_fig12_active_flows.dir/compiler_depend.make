# Empty compiler generated dependencies file for fbs_bench_fig12_active_flows.
# This may be replaced when dependencies are built.
