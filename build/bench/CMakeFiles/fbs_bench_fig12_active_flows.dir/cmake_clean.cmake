file(REMOVE_RECURSE
  "CMakeFiles/fbs_bench_fig12_active_flows.dir/bench_fig12_active_flows.cpp.o"
  "CMakeFiles/fbs_bench_fig12_active_flows.dir/bench_fig12_active_flows.cpp.o.d"
  "fbs_bench_fig12_active_flows"
  "fbs_bench_fig12_active_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_bench_fig12_active_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
