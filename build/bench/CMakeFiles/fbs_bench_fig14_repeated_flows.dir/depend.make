# Empty dependencies file for fbs_bench_fig14_repeated_flows.
# This may be replaced when dependencies are built.
