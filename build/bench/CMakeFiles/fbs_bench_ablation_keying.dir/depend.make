# Empty dependencies file for fbs_bench_ablation_keying.
# This may be replaced when dependencies are built.
