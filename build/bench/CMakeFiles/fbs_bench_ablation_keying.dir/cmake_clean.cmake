file(REMOVE_RECURSE
  "CMakeFiles/fbs_bench_ablation_keying.dir/bench_ablation_keying.cpp.o"
  "CMakeFiles/fbs_bench_ablation_keying.dir/bench_ablation_keying.cpp.o.d"
  "fbs_bench_ablation_keying"
  "fbs_bench_ablation_keying.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_bench_ablation_keying.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
