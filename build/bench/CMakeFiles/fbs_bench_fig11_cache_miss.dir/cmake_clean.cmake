file(REMOVE_RECURSE
  "CMakeFiles/fbs_bench_fig11_cache_miss.dir/bench_fig11_cache_miss.cpp.o"
  "CMakeFiles/fbs_bench_fig11_cache_miss.dir/bench_fig11_cache_miss.cpp.o.d"
  "fbs_bench_fig11_cache_miss"
  "fbs_bench_fig11_cache_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_bench_fig11_cache_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
