
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_cache_miss.cpp" "bench/CMakeFiles/fbs_bench_fig11_cache_miss.dir/bench_fig11_cache_miss.cpp.o" "gcc" "bench/CMakeFiles/fbs_bench_fig11_cache_miss.dir/bench_fig11_cache_miss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/fbs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fbs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/fbs/CMakeFiles/fbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fbs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cert/CMakeFiles/fbs_cert.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fbs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/fbs_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
