# Empty dependencies file for fbs_bench_fig11_cache_miss.
# This may be replaced when dependencies are built.
