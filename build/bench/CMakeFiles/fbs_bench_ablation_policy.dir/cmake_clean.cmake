file(REMOVE_RECURSE
  "CMakeFiles/fbs_bench_ablation_policy.dir/bench_ablation_policy.cpp.o"
  "CMakeFiles/fbs_bench_ablation_policy.dir/bench_ablation_policy.cpp.o.d"
  "fbs_bench_ablation_policy"
  "fbs_bench_ablation_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_bench_ablation_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
