# Empty compiler generated dependencies file for fbs_bench_ablation_policy.
# This may be replaced when dependencies are built.
