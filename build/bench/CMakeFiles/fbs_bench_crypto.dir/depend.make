# Empty dependencies file for fbs_bench_crypto.
# This may be replaced when dependencies are built.
