file(REMOVE_RECURSE
  "CMakeFiles/fbs_bench_crypto.dir/bench_crypto.cpp.o"
  "CMakeFiles/fbs_bench_crypto.dir/bench_crypto.cpp.o.d"
  "fbs_bench_crypto"
  "fbs_bench_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_bench_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
