file(REMOVE_RECURSE
  "CMakeFiles/fbs_bench_fig9_flow_size.dir/bench_fig9_flow_size.cpp.o"
  "CMakeFiles/fbs_bench_fig9_flow_size.dir/bench_fig9_flow_size.cpp.o.d"
  "fbs_bench_fig9_flow_size"
  "fbs_bench_fig9_flow_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_bench_fig9_flow_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
