# Empty dependencies file for fbs_bench_fig9_flow_size.
# This may be replaced when dependencies are built.
