file(REMOVE_RECURSE
  "CMakeFiles/fbs_bench_fig10_flow_duration.dir/bench_fig10_flow_duration.cpp.o"
  "CMakeFiles/fbs_bench_fig10_flow_duration.dir/bench_fig10_flow_duration.cpp.o.d"
  "fbs_bench_fig10_flow_duration"
  "fbs_bench_fig10_flow_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_bench_fig10_flow_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
