# Empty compiler generated dependencies file for fbs_bench_fig10_flow_duration.
# This may be replaced when dependencies are built.
