file(REMOVE_RECURSE
  "CMakeFiles/fbs_bench_fig8_throughput.dir/bench_fig8_throughput.cpp.o"
  "CMakeFiles/fbs_bench_fig8_throughput.dir/bench_fig8_throughput.cpp.o.d"
  "fbs_bench_fig8_throughput"
  "fbs_bench_fig8_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbs_bench_fig8_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
