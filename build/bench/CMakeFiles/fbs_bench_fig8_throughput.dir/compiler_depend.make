# Empty compiler generated dependencies file for fbs_bench_fig8_throughput.
# This may be replaced when dependencies are built.
