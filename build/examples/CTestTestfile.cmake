# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_secure_file_transfer "/root/repo/build/examples/secure_file_transfer")
set_tests_properties(example_secure_file_transfer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attack_demo "/root/repo/build/examples/attack_demo")
set_tests_properties(example_attack_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_conferencing_app "/root/repo/build/examples/conferencing_app")
set_tests_properties(example_conferencing_app PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vpn_gateway "/root/repo/build/examples/vpn_gateway")
set_tests_properties(example_vpn_gateway PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_secure_telnet "/root/repo/build/examples/secure_telnet")
set_tests_properties(example_secure_telnet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_flow_monitor "/root/repo/build/examples/flow_monitor" "5")
set_tests_properties(example_flow_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
