file(REMOVE_RECURSE
  "CMakeFiles/conferencing_app.dir/conferencing_app.cpp.o"
  "CMakeFiles/conferencing_app.dir/conferencing_app.cpp.o.d"
  "conferencing_app"
  "conferencing_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conferencing_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
