# Empty dependencies file for conferencing_app.
# This may be replaced when dependencies are built.
