file(REMOVE_RECURSE
  "CMakeFiles/vpn_gateway.dir/vpn_gateway.cpp.o"
  "CMakeFiles/vpn_gateway.dir/vpn_gateway.cpp.o.d"
  "vpn_gateway"
  "vpn_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpn_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
