# Empty compiler generated dependencies file for secure_telnet.
# This may be replaced when dependencies are built.
