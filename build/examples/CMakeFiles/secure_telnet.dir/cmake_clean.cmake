file(REMOVE_RECURSE
  "CMakeFiles/secure_telnet.dir/secure_telnet.cpp.o"
  "CMakeFiles/secure_telnet.dir/secure_telnet.cpp.o.d"
  "secure_telnet"
  "secure_telnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_telnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
