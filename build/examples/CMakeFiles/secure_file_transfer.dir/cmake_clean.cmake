file(REMOVE_RECURSE
  "CMakeFiles/secure_file_transfer.dir/secure_file_transfer.cpp.o"
  "CMakeFiles/secure_file_transfer.dir/secure_file_transfer.cpp.o.d"
  "secure_file_transfer"
  "secure_file_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_file_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
