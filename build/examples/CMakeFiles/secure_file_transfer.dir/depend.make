# Empty dependencies file for secure_file_transfer.
# This may be replaced when dependencies are built.
